"""Cooperative sessions over the discrete-event clock.

A *session* is a generator that yields instead of advancing the shared
:class:`~repro.sim.clock.SimClock` directly.  Yield points:

* :class:`Charge` (or a bare float) — virtual seconds of work.  The
  scheduler turns it into a clock timer; the session resumes when the
  sweep reaches the deadline.
* :class:`Waiter` — a one-shot future.  The session resumes with the
  waiter's value when someone resolves it, or the exception is thrown
  back into the generator when someone rejects it.
* any object with ``submit(clock) -> Waiter`` — an asynchronous
  operation (e.g. a link flow) that the scheduler submits and then
  waits on.

Two drivers exist for the same generators:

* :func:`drive_sync` replays a session inline — every charge becomes an
  immediate ``clock.advance``, every op runs via its ``apply_sync``.
  This is the legacy run-to-completion path and is byte-identical to
  the pre-session code.
* :class:`Scheduler` interleaves many sessions on clock timers so that
  concurrent migrations contend for shared resources deterministically.

Determinism contract: sessions are resumed only by clock timers and
waiter resolutions, both of which fire in deadline order with FIFO
tie-breaking (the clock's monotonic timer sequence).  Given the same
spawn order and the same yields, the interleaving is a pure function of
the virtual timeline.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable, Deque, Dict, Generator, List, Optional

from collections import deque

from repro.sim.clock import SimClock
from repro.sim.timeline import Timeline


class SchedulerError(Exception):
    """Raised on invalid scheduler operations."""


@dataclass(frozen=True)
class Charge:
    """Virtual seconds of work a session wants charged to the clock."""

    seconds: float

    def __post_init__(self) -> None:
        if self.seconds < 0:
            raise SchedulerError(f"negative charge {self.seconds!r}")


class Waiter:
    """A one-shot future a session can yield on.

    Exactly one of :meth:`resolve` / :meth:`reject` may be called, once.
    Callbacks added after completion fire immediately, which lets the
    scheduler treat already-completed waiters (e.g. an uncontended
    resource acquire) without a spurious suspension.

    ``kind`` classifies what the wait *is* — ``"resource"`` for
    admission queues, ``"flow"`` for link flows, ``"wait"`` otherwise —
    so the scheduler's blocked-time ledger can attribute suspensions by
    cause without inspecting the waiter's owner.
    """

    __slots__ = ("description", "kind", "_done", "_value", "_error",
                 "_callbacks")

    def __init__(self, description: str = "", kind: str = "wait") -> None:
        self.description = description
        self.kind = kind
        self._done = False
        self._value: Any = None
        self._error: Optional[BaseException] = None
        self._callbacks: List[Callable[["Waiter"], None]] = []

    @property
    def done(self) -> bool:
        return self._done

    @property
    def value(self) -> Any:
        if not self._done:
            raise SchedulerError(f"waiter {self.description!r} not done")
        if self._error is not None:
            raise self._error
        return self._value

    @property
    def error(self) -> Optional[BaseException]:
        return self._error

    def resolve(self, value: Any = None) -> None:
        self._complete(value=value)

    def reject(self, error: BaseException) -> None:
        self._complete(error=error)

    def _complete(self, value: Any = None,
                  error: Optional[BaseException] = None) -> None:
        if self._done:
            raise SchedulerError(
                f"waiter {self.description!r} completed twice")
        self._done = True
        self._value = value
        self._error = error
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback(self)

    def add_done(self, callback: Callable[["Waiter"], None]) -> None:
        if self._done:
            callback(self)
        else:
            self._callbacks.append(callback)


class Resource:
    """An exclusive resource with a FIFO wait queue.

    The scenario layer models "device X is already hosting a migration"
    as holding that device's resource; admission control either queues
    on :meth:`acquire` or refuses when :attr:`busy`.

    With a ``clock`` the resource keeps an admission ledger — per-waiter
    enqueue→grant latency in :attr:`waits`, grant count, cumulative
    :attr:`held_seconds` — and with ``events``/``timeline`` it emits
    ``resource.enqueue``/``resource.grant`` causal events (carrying who
    was ahead and the queue depth) and samples the queue-depth series on
    every edge.  ``resource.grant`` is emitted for *every* grant,
    including uncontended ones with ``waited=0.0``: the grant instant is
    the admission boundary the blame decomposition anchors on.
    """

    def __init__(self, name: str, clock: Optional[SimClock] = None,
                 timeline: Optional[Timeline] = None,
                 events=None) -> None:
        self.name = name
        self._clock = clock
        self.timeline = timeline if timeline is not None \
            else Timeline(enabled=False)
        self.events = events
        self._holder: Optional[str] = None
        self._queue: Deque[tuple] = deque()
        self._acquired_at: float = 0.0
        #: who -> cumulative enqueue→grant seconds (0.0 entries for
        #: uncontended grants, so every holder appears in the ledger).
        self.waits: Dict[str, float] = {}
        self.grants = 0
        self.held_seconds = 0.0

    @property
    def busy(self) -> bool:
        return self._holder is not None

    @property
    def holder(self) -> Optional[str]:
        return self._holder

    @property
    def queued(self) -> int:
        return len(self._queue)

    def _now(self) -> float:
        return self._clock.now if self._clock is not None else 0.0

    def _granted(self, who: str, waited: float,
                 behind: Optional[str] = None) -> None:
        self._holder = who
        self._acquired_at = self._now()
        self.waits[who] = self.waits.get(who, 0.0) + waited
        self.grants += 1
        if self.events is not None:
            attrs = {"resource": self.name, "who": who,
                     "waited": round(waited, 6), "depth": len(self._queue)}
            if behind is not None:
                attrs["behind"] = behind
            self.events.emit("resource.grant", **attrs)

    def acquire(self, who: str = "?") -> Waiter:
        """A waiter that resolves (with this resource) once held by ``who``."""
        waiter = Waiter(f"acquire {self.name} for {who}", kind="resource")
        if self._holder is None:
            self._granted(who, 0.0)
            waiter.resolve(self)
        else:
            self._queue.append((who, waiter, self._now(), self._holder))
            if self.events is not None:
                self.events.emit("resource.enqueue", resource=self.name,
                                 who=who, holder=self._holder,
                                 depth=len(self._queue))
            self.timeline.sample("resource/queue_depth", len(self._queue),
                                 resource=self.name)
        return waiter

    def try_acquire(self, who: str = "?") -> bool:
        if self._holder is not None:
            return False
        self._granted(who, 0.0)
        return True

    def release(self) -> None:
        if self._holder is None:
            raise SchedulerError(f"resource {self.name!r} not held")
        self._holder = None
        self.held_seconds += self._now() - self._acquired_at
        if self._queue:
            who, waiter, enqueued_at, behind = self._queue.popleft()
            self._granted(who, self._now() - enqueued_at, behind=behind)
            self.timeline.sample("resource/queue_depth", len(self._queue),
                                 resource=self.name)
            waiter.resolve(self)


class Session:
    """Handle for one spawned generator.

    Alongside control state the handle carries the scheduler's
    *time ledger* for this session: :attr:`working_s` is virtual time
    spent runnable (charges plus any clock advance the generator makes
    inline), :attr:`blocked` maps a wait kind (``"resource"``,
    ``"flow"``, ``"wait"``) to the total seconds suspended on waiters of
    that kind.  ``started_at``/``finished_at`` bound the session's wall
    interval; the ledger covers exactly the session's *own* share of it
    (``working_s + sum(blocked.values())``) — time other sessions
    consumed nested inside this one's resumes (an inline resource
    hand-off, a re-entrant clock advance) is excluded, so the
    wait-profile decomposition sums to the session's true wall time.
    """

    PENDING = "pending"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"

    def __init__(self, name: str, gen: Generator, seq: int) -> None:
        self.name = name
        self.seq = seq
        self.state = Session.PENDING
        self.result: Any = None
        self.error: Optional[BaseException] = None
        self._gen = gen
        self.working_s = 0.0
        self.blocked: Dict[str, float] = {}
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None

    @property
    def finished(self) -> bool:
        return self.state in (Session.DONE, Session.FAILED)

    @property
    def blocked_s(self) -> float:
        return sum(self.blocked.values())


class Scheduler:
    """Drives cooperative sessions on a shared :class:`SimClock`.

    An optional :class:`Timeline` receives a ``scheduler/sessions_in_flight``
    sample on every start/finish edge.  The per-session ledger (see
    :class:`Session`) is maintained unconditionally — it is plain float
    accounting on values the scheduler already reads, never advances the
    clock and never draws RNG, so it cannot perturb a simulation.
    """

    def __init__(self, clock: SimClock,
                 timeline: Optional[Timeline] = None) -> None:
        self.clock = clock
        self.timeline = timeline if timeline is not None \
            else Timeline(enabled=False)
        self.sessions: List[Session] = []
        self._seq = itertools.count()
        self._live = 0
        self._in_flight = 0
        #: Monotonic total of virtual seconds consumed by *synchronously
        #: nested* steps — another session resumed inline from this
        #: session's own frame (a resource release handing off to its
        #: next waiter).  A send bracket subtracts the growth it
        #: observes: that time belongs to the resumed session's ledger.
        #: Steps reached through a timer callback (a re-entrant clock
        #: advance firing a due timer) are *concurrent* in virtual time
        #: and are not subtracted — both sessions legitimately claim
        #: the same interval.
        self._nested_time = 0.0
        #: Dispatch tokens of the active send brackets, innermost last.
        #: A child step whose entry token matches the top entry was
        #: reached without any timer firing in between — synchronous.
        self._send_stack: List[int] = []

    def spawn(self, gen: Generator, name: Optional[str] = None,
              at: Optional[float] = None) -> Session:
        """Register ``gen`` to start at virtual time ``at`` (default now)."""
        session = Session(name or f"session-{len(self.sessions)}",
                          gen, next(self._seq))
        self.sessions.append(session)
        self._live += 1
        start = self.clock.now if at is None else float(at)
        if start < self.clock.now:
            raise SchedulerError(
                f"session {session.name!r} starts at {start} in the past "
                f"(now {self.clock.now})")
        self.clock.call_at(start, lambda: self._step(session, None, None))
        return session

    def run(self) -> None:
        """Advance the clock until every spawned session has finished."""
        while self._live:
            deadline = self.clock.next_deadline()
            if deadline is None:
                stuck = [s.name for s in self.sessions if not s.finished]
                raise SchedulerError(
                    f"deadlock: no timers pending but sessions still "
                    f"waiting: {stuck}")
            self.clock.advance_to(deadline)

    # -- session stepping --------------------------------------------

    def _finish(self, session: Session, state: str, *,
                result: Any = None,
                error: Optional[BaseException] = None) -> None:
        session.state = state
        session.result = result
        session.error = error
        session.finished_at = self.clock.now
        self._live -= 1
        self._in_flight -= 1
        self.timeline.sample("scheduler/sessions_in_flight",
                             self._in_flight)

    def _step(self, session: Session, value: Any,
              error: Optional[BaseException]) -> None:
        """Resume ``session`` with ``value`` (or throw ``error`` into it).

        Loops over immediately-ready yields (already-resolved waiters)
        so an uncontended acquire never recurses or suspends.

        Ledger: every send/throw is bracketed by clock reads, so any
        virtual time the generator body consumes inline lands in
        :attr:`Session.working_s`; charge seconds are credited when the
        charge is scheduled; suspension intervals are measured by the
        resume callback and land in :attr:`Session.blocked` under the
        waiter's kind.  A send can run *other* sessions' steps nested
        inside it: a resource release resumes its next waiter inline
        (synchronous — that time belongs to the resumed session's
        ledger and is subtracted from this bracket), while a re-entrant
        ``clock.advance`` fires due timers (concurrent in virtual time —
        both sessions keep the interval).
        """
        entered_at = self.clock.now
        outer_nested = self._nested_time
        synchronous = bool(self._send_stack) and \
            self.clock.dispatch_token == self._send_stack[-1]
        try:
            self._step_inner(session, value, error)
        finally:
            # A synchronous hand-off reports its full elapsed time to
            # the enclosing bracket (absorbing, not double-counting,
            # whatever its own nested children reported).  A step that
            # arrived through a timer callback runs concurrently in
            # virtual time and reports nothing.
            self._nested_time = outer_nested + (
                self.clock.now - entered_at if synchronous else 0.0)

    def _step_inner(self, session: Session, value: Any,
                    error: Optional[BaseException]) -> None:
        if session.started_at is None:
            session.started_at = self.clock.now
            self._in_flight += 1
            self.timeline.sample("scheduler/sessions_in_flight",
                                 self._in_flight)
        session.state = Session.RUNNING
        while True:
            resumed_at = self.clock.now
            nested_before = self._nested_time
            self._send_stack.append(self.clock.dispatch_token)
            try:
                if error is not None:
                    err, error = error, None
                    op = session._gen.throw(err)
                else:
                    op = session._gen.send(value)
            except StopIteration as stop:
                self._credit_work(session, resumed_at, nested_before)
                self._finish(session, Session.DONE, result=stop.value)
                return
            except BaseException as exc:  # session died with its error
                self._credit_work(session, resumed_at, nested_before)
                self._finish(session, Session.FAILED, error=exc)
                return
            finally:
                self._send_stack.pop()
            self._credit_work(session, resumed_at, nested_before)
            value = None
            if isinstance(op, (int, float)):
                op = Charge(float(op))
            if isinstance(op, Charge):
                session.state = Session.PENDING
                session.working_s += op.seconds
                self.clock.call_after(
                    op.seconds, lambda: self._step(session, None, None))
                return
            if not isinstance(op, Waiter):
                submit = getattr(op, "submit", None)
                if submit is None:
                    self._finish(session, Session.FAILED,
                                 error=SchedulerError(
                                     f"session {session.name!r} "
                                     f"yielded {op!r}"))
                    session._gen.close()
                    return
                op = submit(self.clock)
            if op.done and op.error is None:
                value = op._value
                continue
            if op.done:
                error = op.error
                continue
            session.state = Session.PENDING
            waiter = op

            def _resume(w: Waiter, session: Session = session,
                        since: float = self.clock.now,
                        kind: str = waiter.kind) -> None:
                session.blocked[kind] = (session.blocked.get(kind, 0.0)
                                         + (self.clock.now - since))
                self._step(session, w._value, w._error)

            waiter.add_done(_resume)
            return

    def _credit_work(self, session: Session, resumed_at: float,
                     nested_before: float) -> None:
        """Credit one send bracket to ``session.working_s``, excluding
        virtual time consumed by other sessions' steps nested inside."""
        elapsed = self.clock.now - resumed_at
        foreign = self._nested_time - nested_before
        session.working_s += elapsed - foreign


def drive_sync(gen: Generator, clock: SimClock) -> Any:
    """Run a session generator to completion inline.

    Charges become immediate ``clock.advance`` calls and ops run through
    their ``apply_sync`` — exactly the pre-session synchronous code
    path, so a single session driven this way is byte-identical to the
    old run-to-completion implementation.  Returns the generator's
    return value; exceptions (including op failures thrown back in)
    propagate to the caller.
    """
    value: Any = None
    error: Optional[BaseException] = None
    while True:
        try:
            if error is not None:
                err, error = error, None
                op = gen.throw(err)
            else:
                op = gen.send(value)
        except StopIteration as stop:
            return stop.value
        value = None
        if isinstance(op, (int, float)):
            op = Charge(float(op))
        if isinstance(op, Charge):
            clock.advance(op.seconds)
            continue
        if isinstance(op, Waiter):
            if not op.done:
                raise SchedulerError(
                    f"cannot wait synchronously on pending waiter "
                    f"{op.description!r}")
            if op.error is not None:
                error = op.error
            else:
                value = op._value
            continue
        apply_sync = getattr(op, "apply_sync", None)
        if apply_sync is None:
            gen.close()
            raise SchedulerError(f"sync driver cannot execute {op!r}")
        try:
            value = apply_sync(clock)
        except BaseException as exc:
            error = exc
