"""Causal event log: per-device flight recorders with Binder causality.

The span tree (:mod:`repro.sim.trace`) answers "where did the time go?"
and the metrics registry (:mod:`repro.sim.metrics`) answers "how much
work happened?"; this module answers **"what happened, in what order,
caused by what?"** — the question a faulted migration's post-mortem
needs (``flux-sim explain``).

Every structured event (``binder.transact``, ``record.prune``,
``replay.proxy``, ``cria.restore_step``, ``link.chunk``,
``stage.rollback``, …) carries:

* ``seq`` — a per-device monotonic sequence number (1-based, counting
  every event ever emitted on the device, including evicted ones);
* ``t`` — the virtual-clock timestamp (never wall clock);
* ``txn`` — the innermost Binder transaction id the event happened
  inside, when any (the Binder driver pushes/pops transaction context
  around dispatch); ``binder.transact`` events additionally carry
  ``parent_txn`` for nested transactions;
* ``span`` — the open-span path on the attached tracer (e.g.
  ``migration/transfer``), linking the flat event stream back to the
  hierarchical spans;
* free-form ``attrs``, plus any *context* labels pushed by the stage
  pipeline (``stage=transfer``), so guest-side events — whose tracer
  has no open migration span — still attribute to a stage.

Determinism contract (the same one :mod:`repro.sim.metrics` honors):
emitting **never advances the clock and never draws from the RNG**, so
the default sweep is byte-identical with event logging enabled or
disabled (``FLUX_EVENTS=0``).  Transaction ids come from the Binder
driver's own per-device transaction counter, which increments whether
or not logging is on — ids are stable across both modes.

Events flow through a bounded ring buffer (a *flight recorder*): the
``FLUX_EVENTS_CAP`` environment variable bounds per-device memory, and
when the buffer is full the oldest events are evicted first — exactly
what a post-mortem wants, since the tail before the fault is what
explains it.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional

#: Set to ``0`` to disable event collection device-wide (the
#: determinism regression tests assert byte-identity either way).
EVENTS_ENV = "FLUX_EVENTS"

#: Per-device ring-buffer capacity (number of retained events).
EVENTS_CAP_ENV = "FLUX_EVENTS_CAP"

DEFAULT_CAPACITY = 65536


class EventsError(Exception):
    """Flight-recorder misuse (bad capacity, unbalanced txn stack)."""


@dataclass(frozen=True)
class CausalEvent:
    """One structured event on a device's virtual timeline."""

    seq: int
    time: float
    device: str
    kind: str
    txn: Optional[int] = None
    span: Optional[str] = None
    attrs: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready dict; key set is fixed so JSONL lines are uniform."""
        return {
            "seq": self.seq,
            "t": self.time,
            "device": self.device,
            "kind": self.kind,
            "txn": self.txn,
            "span": self.span,
            "attrs": dict(self.attrs),
        }

    def __str__(self) -> str:
        extras = " ".join(f"{k}={v}" for k, v in sorted(self.attrs.items()))
        txn = f" txn={self.txn}" if self.txn is not None else ""
        return (f"#{self.seq} [{self.time:10.4f}] {self.kind}"
                f"{txn} {extras}").rstrip()


_UNSET = object()


class FlightRecorder:
    """Bounded per-device causal event log.

    ``clock`` is only ever read.  ``tracer`` (optional) supplies the
    open-span path attached to each event.  A recorder built with
    ``enabled=False`` is a shared-contract null object: ``emit`` is a
    no-op, the transaction stack and context still work (they are pure
    bookkeeping, cheap and deterministic), and ``export`` is empty —
    instrumented code never needs an ``if``.
    """

    def __init__(self, clock=None, device: str = "",
                 capacity: int = DEFAULT_CAPACITY,
                 tracer=None, enabled: bool = True) -> None:
        if capacity < 1:
            raise EventsError(f"bad flight-recorder capacity {capacity!r}")
        self._clock = clock
        self.device = device
        self.capacity = capacity
        self._tracer = tracer
        self.enabled = enabled
        self._buffer: deque = deque(maxlen=capacity)
        #: Total events ever emitted (including evicted ones); the next
        #: event gets ``seq = emitted + 1``.
        self.emitted = 0
        self._txn_stack: List[int] = []
        self._context: Dict[str, Any] = {}

    # -- causality context ---------------------------------------------------

    def push_txn(self, txn_id: int) -> None:
        """Enter a Binder transaction: subsequent events carry its id."""
        self._txn_stack.append(txn_id)

    def pop_txn(self) -> None:
        if not self._txn_stack:
            raise EventsError("transaction stack underflow")
        self._txn_stack.pop()

    @property
    def current_txn(self) -> Optional[int]:
        return self._txn_stack[-1] if self._txn_stack else None

    @property
    def parent_txn(self) -> Optional[int]:
        return self._txn_stack[-2] if len(self._txn_stack) >= 2 else None

    def set_context(self, **labels: Any) -> None:
        """Attach labels (e.g. ``stage=transfer``) to subsequent events."""
        self._context.update(labels)

    def clear_context(self, *keys: str) -> None:
        for key in keys:
            self._context.pop(key, None)

    # -- emission ------------------------------------------------------------

    def emit(self, kind: str, txn: Any = _UNSET,
             **attrs: Any) -> Optional[CausalEvent]:
        """Record one event; returns it (or ``None`` when disabled).

        ``txn`` defaults to the innermost open Binder transaction;
        pass an explicit id (or ``None``) to override.
        """
        if not self.enabled:
            return None
        self.emitted += 1
        span_path = None
        if self._tracer is not None:
            # Cached on the tracer and invalidated on span open/close —
            # emitting thousands of events inside one stage span no
            # longer re-joins the span names per event.
            span_path = self._tracer.open_span_path
        merged = {**self._context, **attrs} if self._context else attrs
        event = CausalEvent(
            seq=self.emitted,
            time=self._clock.now if self._clock is not None else 0.0,
            device=self.device,
            kind=kind,
            txn=self.current_txn if txn is _UNSET else txn,
            span=span_path,
            attrs=merged,
        )
        self._buffer.append(event)
        return event

    # -- inspection ----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._buffer)

    def __iter__(self):
        return iter(self._buffer)

    @property
    def evicted(self) -> int:
        """Events pushed out of the ring to keep memory bounded."""
        return self.emitted - len(self._buffer)

    def events(self, kind: Optional[str] = None) -> List[CausalEvent]:
        if kind is None:
            return list(self._buffer)
        return [e for e in self._buffer if e.kind == kind]

    def export(self) -> List[Dict[str, Any]]:
        """The retained events as JSON-ready dicts, in emission order."""
        return [e.to_dict() for e in self._buffer]

    def clear(self) -> None:
        self._buffer.clear()


def merge_streams(*streams: Iterable[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Merge exported per-device streams into one causal ordering.

    Devices in one simulation share a virtual clock, so sorting by
    ``(t, device, seq)`` yields a deterministic interleaving that
    preserves each device's own emission order (``seq`` is per-device
    monotonic).  The merge is therefore identical whether the streams
    came from a serial or a parallel sweep.
    """
    merged: List[Dict[str, Any]] = []
    for stream in streams:
        merged.extend(stream)
    merged.sort(key=lambda e: (e["t"], e["device"], e["seq"]))
    return merged


def write_jsonl(path: str, events: Iterable[Dict[str, Any]]) -> int:
    """Write events as JSONL (one sorted-key JSON object per line)."""
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for event in events:
            handle.write(json.dumps(event, sort_keys=True))
            handle.write("\n")
            count += 1
    return count


def parse_jsonl(lines: Iterable[str], source: str = "<events>"
                ) -> List[Dict[str, Any]]:
    """Parse JSONL event lines, locating malformed ones precisely.

    A corrupt artifact raises :class:`EventsError` carrying the source
    name and 1-based line number (instead of a bare
    ``json.JSONDecodeError`` with no idea *which* of 50k lines broke).
    """
    events: List[Dict[str, Any]] = []
    for lineno, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            event = json.loads(line)
        except json.JSONDecodeError as error:
            raise EventsError(
                f"{source}:{lineno}: malformed event line "
                f"({error.msg} at column {error.colno}): "
                f"{line[:80]!r}") from error
        events.append(event)
    return events


def read_jsonl(path: str) -> List[Dict[str, Any]]:
    """Load an ``--events-out`` artifact back into event dicts.

    Malformed lines raise :class:`EventsError` with the file name and
    line number (see :func:`parse_jsonl`).
    """
    with open(path, "r", encoding="utf-8") as handle:
        return parse_jsonl(handle, source=path)
