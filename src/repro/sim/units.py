"""Size and rate units used throughout the simulation.

Sizes are plain integer byte counts; these helpers exist so call sites
read like the paper ("14 MB of state", "an 802.11n link") instead of raw
magic numbers.
"""

from __future__ import annotations

KB = 1024
MB = 1024 * KB
GB = 1024 * MB

# Network rates are bits per second, as radios are specified.
KBPS = 1_000
MBPS = 1_000_000


def kb(n: float) -> int:
    return int(n * KB)


def mb(n: float) -> int:
    return int(n * MB)


def gb(n: float) -> int:
    return int(n * GB)


def mbps(n: float) -> float:
    return n * MBPS


def to_mb(n_bytes: int) -> float:
    """Bytes to megabytes as a float, for reporting."""
    return n_bytes / MB


def to_kb(n_bytes: int) -> float:
    return n_bytes / KB


def format_size(n_bytes: int) -> str:
    """Human-readable size, e.g. '13.6 MB' or '187 KB'."""
    if n_bytes >= MB:
        return f"{n_bytes / MB:.1f} MB"
    if n_bytes >= KB:
        return f"{n_bytes / KB:.0f} KB"
    return f"{n_bytes} B"


def transfer_seconds(n_bytes: int, rate_bps: float) -> float:
    """Wire time to move ``n_bytes`` over a ``rate_bps`` link."""
    if rate_bps <= 0:
        raise ValueError(f"non-positive rate {rate_bps!r}")
    return (n_bytes * 8) / rate_bps
