"""flux-repro: 'Flux: Multi-Surface Computing in Android' (EuroSys 2015),
reproduced on a simulated Android platform.

Quick tour::

    from repro.android.device import Device
    from repro.android.hardware import NEXUS_4, NEXUS_7_2013
    from repro.apps import app_by_title
    from repro.sim import SimClock

    clock = SimClock()
    phone = Device(NEXUS_4, clock, name="phone")
    tablet = Device(NEXUS_7_2013, clock, name="tablet")
    app = app_by_title("Netflix")
    app.install_and_launch(phone)
    phone.pairing_service.pair(tablet)
    report = phone.migration_service.migrate(tablet, app.package)

Subpackages: :mod:`repro.sim` (deterministic substrate),
:mod:`repro.android` (the simulated platform), :mod:`repro.core` (Flux:
record/replay, CRIA, migration), :mod:`repro.apps` (Table 3 workloads),
:mod:`repro.playstore`, :mod:`repro.benchmarksuite`,
:mod:`repro.experiments` (every table/figure).
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
