"""Pretty-printer round-trips, including generatively."""

import pytest
from hypothesis import given, strategies as st

from repro.android.aidl.ast import (
    THIS,
    Decoration,
    DropRule,
    InterfaceDecl,
    MethodDecl,
    Param,
)
from repro.android.aidl.parser import parse_interface
from repro.android.aidl.printer import (
    print_document,
    print_interface,
    strip_positions,
)
from repro.android.services.aidl_sources import AIDL_SOURCES
from repro.android.aidl.parser import parse


class TestRoundTrip:
    @pytest.mark.parametrize("key", sorted(AIDL_SOURCES))
    def test_every_service_source_round_trips(self, key):
        document = parse(AIDL_SOURCES[key])
        for iface in document.interfaces:
            printed = print_interface(iface)
            reparsed = parse_interface(printed)
            assert strip_positions(reparsed) == strip_positions(iface)

    def test_printed_source_is_stable(self):
        """print(parse(print(x))) == print(x): the printer is canonical."""
        source = AIDL_SOURCES["alarm"]
        once = print_interface(parse(source).interfaces[0])
        twice = print_interface(parse_interface(once))
        assert once == twice


# -- generative round-trip ---------------------------------------------------

_IDENT = st.from_regex(r"[a-z][a-zA-Z0-9]{0,8}", fullmatch=True)
_TYPE = st.sampled_from(["void", "int", "long", "boolean", "String",
                         "Notification", "List<String>", "long[]"])


@st.composite
def _methods(draw):
    count = draw(st.integers(1, 5))
    methods = []
    names = []
    for i in range(count):
        name = f"m{i}_{draw(_IDENT)}"
        params = tuple(
            Param(type_name=draw(_TYPE.filter(lambda t: t != "void")),
                  name=f"a{j}")
            for j in range(draw(st.integers(0, 3))))
        names.append((name, params))
        methods.append((name, params))
    out = []
    for i, (name, params) in enumerate(methods):
        decoration = None
        if draw(st.booleans()):
            rules = []
            if draw(st.booleans()):
                targets = [THIS]
                # may also drop an earlier method
                if i > 0 and draw(st.booleans()):
                    targets.append(methods[0][0])
                signatures = ()
                if params and draw(st.booleans()):
                    signatures = ((params[0].name,),)
                rules.append(DropRule(targets=tuple(targets),
                                      signatures=signatures))
            proxy = ("flux.recordreplay.Proxies.p" if draw(st.booleans())
                     else None)
            decoration = Decoration(record=True, drop_rules=tuple(rules),
                                    replay_proxy=proxy)
        out.append(MethodDecl(
            name=name, return_type=draw(_TYPE), params=params,
            decoration=decoration, oneway=draw(st.booleans())))
    return tuple(out)


@given(methods=_methods())
def test_generated_interfaces_round_trip(methods):
    iface = InterfaceDecl(name="IGenerated", methods=methods)
    printed = print_interface(iface)
    reparsed = parse_interface(printed)
    assert strip_positions(reparsed) == strip_positions(iface)


def test_print_document_multiple_interfaces():
    document = parse("interface A { void f(); } interface B { void g(); }")
    text = print_document(document)
    reparsed = parse(text)
    assert [i.name for i in reparsed.interfaces] == ["A", "B"]
