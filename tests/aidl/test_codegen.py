"""AIDL code generation: proxies, stubs, the registry, Table 2 stats."""

import pytest

from repro.android.aidl import (
    AidlError,
    InterfaceRegistry,
    generate_source,
    parse_interface,
)


SOURCE = """
interface ICounter {
    @record
    void add(int amount);

    @record {
        @drop this, add;
        @if amount;
    }
    void undo(int amount);

    int total();
}
"""


class FakeRemote:
    def __init__(self):
        self.handle = 42
        self.calls = []

    def transact(self, method, *args):
        self.calls.append((method, args))
        return f"result-of-{method}"


class FakeRecorder:
    def __init__(self):
        self.calls = []

    def on_call(self, descriptor, method, args, result):
        self.calls.append((descriptor, method, args, result))


@pytest.fixture
def registry():
    reg = InterfaceRegistry()
    reg.compile_source(SOURCE)
    return reg


class TestProxyGeneration:
    def test_proxy_transacts_and_returns(self, registry):
        remote = FakeRemote()
        proxy = registry.get("ICounter").new_proxy(remote)
        assert proxy.add(5) == "result-of-add"
        assert remote.calls == [("add", (5,))]

    def test_recorded_method_invokes_recorder(self, registry):
        remote, recorder = FakeRemote(), FakeRecorder()
        proxy = registry.get("ICounter").new_proxy(remote, recorder)
        result = proxy.add(5)
        ((descriptor, method, args, recorded_result),) = recorder.calls
        assert descriptor == "ICounter"
        assert method == "add"
        assert args == {"__target__": 42, "amount": 5}
        assert recorded_result == result

    def test_unrecorded_method_skips_recorder(self, registry):
        remote, recorder = FakeRemote(), FakeRecorder()
        proxy = registry.get("ICounter").new_proxy(remote, recorder)
        proxy.total()
        assert recorder.calls == []

    def test_proxy_without_recorder_never_fails(self, registry):
        proxy = registry.get("ICounter").new_proxy(FakeRemote(), None)
        proxy.add(1)
        proxy.undo(1)

    def test_as_binder_exposes_remote(self, registry):
        remote = FakeRemote()
        proxy = registry.get("ICounter").new_proxy(remote)
        assert proxy.as_binder() is remote


class TestStubGeneration:
    def test_stub_forwards_with_caller(self, registry):
        calls = []

        class Impl:
            def add(self, caller, amount):
                calls.append((caller, amount))
                return amount + 1

        stub = registry.get("ICounter").new_stub(Impl())
        assert stub.add("the-caller", 4) == 5
        assert calls == [("the-caller", 4)]


class TestRegistry:
    def test_duplicate_registration_rejected(self, registry):
        with pytest.raises(AidlError):
            registry.compile_source(SOURCE)

    def test_unknown_interface_rejected(self, registry):
        with pytest.raises(AidlError):
            registry.get("IMissing")

    def test_stats_exposed(self, registry):
        compiled = registry.get("ICounter")
        assert compiled.method_count == 3
        assert compiled.decoration_loc == 5     # 1 + 4 block lines
        assert compiled.generated_loc > 20
        assert registry.names() == ["ICounter"]

    def test_meta_reflects_decorations(self, registry):
        meta = registry.meta("ICounter")
        assert meta.recorded_method_names() == ("add", "undo")
        assert meta.method("total").recorded is False
        assert meta.method("undo").decoration.drop_rules[0].targets == \
            ("this", "add")


class TestGeneratedSource:
    def test_source_is_valid_python(self):
        iface = parse_interface(SOURCE)
        source = generate_source(iface)
        compile(source, "<test>", "exec")

    def test_source_mentions_every_method(self):
        iface = parse_interface(SOURCE)
        source = generate_source(iface)
        for name in ("add", "undo", "total"):
            assert f"def {name}" in source

    def test_all_service_interfaces_compile(self):
        from repro.android.services.aidl_sources import (
            SERVICE_SPECS,
            all_sources,
        )
        registry = InterfaceRegistry()
        registry.compile_source(all_sources())
        for spec in SERVICE_SPECS:
            assert registry.has(spec.interface), spec.interface
        # The sensor connection sub-interface compiles too.
        assert registry.has("ISensorEventConnection")

    def test_undecorated_services_have_zero_decoration_loc(self):
        from repro.android.services.aidl_sources import all_sources
        registry = InterfaceRegistry()
        registry.compile_source(all_sources())
        for name in ("IBluetoothService", "ISerialService", "IUsbService"):
            assert registry.get(name).decoration_loc == 0
