"""AIDL lexer and parser, including the paper's Figures 6-9 sources."""

import pytest

from repro.android.aidl import (
    LexError,
    ParseError,
    SemanticError,
    TokenKind,
    parse,
    parse_interface,
    tokenize,
)
from repro.android.aidl.tokens import iter_significant_lines


NOTIFICATION_SOURCE = """
interface INotificationManager {
    @record
    void enqueueNotification(int id, Notification notification);

    @record {
        @drop this, enqueueNotification;
        @if id;
    }
    void cancelNotification(int id);
}
"""

ALARM_SOURCE = """
interface IAlarmManager {
    @record {
        @drop this;
        @if operation;
        @replayproxy \\
            flux.recordreplay.Proxies.alarmMgrSet;
    }
    void set(int type, long triggerAtTime, in PendingIntent operation);

    @record {
        @drop this, set;
        @if operation;
    }
    void remove(in PendingIntent operation);
}
"""


class TestLexer:
    def test_tokenizes_decorators_and_idents(self):
        tokens = tokenize("@record void f();")
        kinds = [t.kind for t in tokens]
        assert kinds == [TokenKind.DECORATOR, TokenKind.IDENT,
                         TokenKind.IDENT, TokenKind.LPAREN, TokenKind.RPAREN,
                         TokenKind.SEMI, TokenKind.EOF]

    def test_dotted_path_is_one_ident(self):
        tokens = tokenize("flux.recordreplay.Proxies.alarmMgrSet")
        assert tokens[0].text == "flux.recordreplay.Proxies.alarmMgrSet"

    def test_comments_skipped(self):
        source = "// line\ninterface /* block */ I { }"
        texts = [t.text for t in tokenize(source) if t.text]
        assert texts == ["interface", "I", "{", "}"]

    def test_unknown_decorator_rejected(self):
        with pytest.raises(LexError):
            tokenize("@bogus void f();")

    def test_unterminated_block_comment_rejected(self):
        with pytest.raises(LexError):
            tokenize("/* forever")

    def test_line_numbers_tracked(self):
        tokens = tokenize("a\nb\nc")
        assert [t.line for t in tokens[:3]] == [1, 2, 3]

    def test_backslash_continuation_ignored(self):
        tokens = tokenize("@replayproxy \\\n  x.y;")
        assert tokens[1].text == "x.y"

    def test_significant_line_counting(self):
        source = "a\n\n// comment\n/* multi\nline */\nb\n"
        assert list(iter_significant_lines(source)) == ["a", "b"]


class TestParser:
    def test_notification_example(self):
        iface = parse_interface(NOTIFICATION_SOURCE)
        assert iface.name == "INotificationManager"
        assert iface.method_names() == ("enqueueNotification",
                                        "cancelNotification")
        enqueue = iface.method("enqueueNotification")
        assert enqueue.recorded
        assert enqueue.decoration.drop_rules == ()
        cancel = iface.method("cancelNotification")
        (rule,) = cancel.decoration.drop_rules
        assert rule.targets == ("this", "enqueueNotification")
        assert rule.signatures == (("id",),)

    def test_alarm_example_with_replayproxy(self):
        iface = parse_interface(ALARM_SOURCE)
        set_method = iface.method("set")
        assert set_method.decoration.replay_proxy == \
            "flux.recordreplay.Proxies.alarmMgrSet"
        assert set_method.params[2].direction == "in"
        assert set_method.params[2].type_name == "PendingIntent"

    def test_elif_builds_alternative_signatures(self):
        iface = parse_interface("""
        interface I {
            @record {
                @drop this;
                @if a;
                @elif b, c;
            }
            void f(int a, int b, int c);
        }
        """)
        (rule,) = iface.method("f").decoration.drop_rules
        assert rule.signatures == (("a",), ("b", "c"))

    def test_multiple_drop_rules(self):
        iface = parse_interface("""
        interface I {
            @record {
                @drop g;
                @if a;
                @drop h;
            }
            void f(int a);
            void g(int a);
            void h();
        }
        """)
        rules = iface.method("f").decoration.drop_rules
        assert len(rules) == 2
        assert rules[0].targets == ("g",)
        assert rules[1].unconditional

    def test_generic_and_array_types(self):
        iface = parse_interface("""
        interface I {
            List<String> names();
            void take(in long[] pattern, in Map<String, int> m);
        }
        """)
        assert iface.method("names").return_type == "List<String>"
        assert iface.method("take").params[0].type_name == "long[]"

    def test_oneway_methods(self):
        iface = parse_interface("interface I { oneway void fire(); }")
        assert iface.method("fire").oneway

    def test_decoration_loc_counted(self):
        iface = parse_interface(NOTIFICATION_SOURCE)
        # @record = 1 line; @record{...} block = 4 lines.
        assert iface.method("enqueueNotification").decoration.source_lines == 1
        assert iface.method("cancelNotification").decoration.source_lines == 4
        assert iface.decoration_loc == 5

    def test_multiple_interfaces_per_document(self):
        document = parse("interface A { void f(); } interface B { void g(); }")
        assert [i.name for i in document.interfaces] == ["A", "B"]


class TestParserErrors:
    def test_if_without_drop(self):
        with pytest.raises(ParseError):
            parse("interface I { @record { @if a; } void f(int a); }")

    def test_elif_without_if(self):
        with pytest.raises(ParseError):
            parse("interface I { @record { @drop this; @elif a; } void f(int a); }")

    def test_duplicate_if(self):
        with pytest.raises(ParseError):
            parse("interface I { @record { @drop this; @if a; @if a; } "
                  "void f(int a); }")

    def test_missing_semicolon(self):
        with pytest.raises(ParseError):
            parse("interface I { void f() }")

    def test_empty_document(self):
        with pytest.raises(ParseError):
            parse("   ")

    def test_drop_target_must_exist(self):
        with pytest.raises(SemanticError):
            parse("interface I { @record { @drop nothing; } void f(); }")

    def test_if_arg_must_be_parameter(self):
        with pytest.raises(SemanticError):
            parse("interface I { @record { @drop this; @if missing; } "
                  "void f(int a); }")

    def test_duplicate_methods_rejected(self):
        with pytest.raises(SemanticError):
            parse("interface I { void f(); void f(); }")

    def test_parse_interface_requires_exactly_one(self):
        with pytest.raises(SemanticError):
            parse_interface("interface A { void f(); } interface B { void g(); }")
