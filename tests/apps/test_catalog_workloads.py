"""The Table 3 app catalog and each app's workload."""

import pytest

from repro.android.device import Device
from repro.android.hardware.profiles import NEXUS_4
from repro.apps import (
    EXPECTED_FAILURES,
    MIGRATABLE_APPS,
    TOP_APPS,
    app_by_package,
    app_by_title,
)
from repro.core.cria.errors import MigrationRefusal
from repro.sim import SimClock, units
from repro.sim.rng import RngFactory


class TestCatalogShape:
    def test_eighteen_apps(self):
        assert len(TOP_APPS) == 18

    def test_sixteen_migratable(self):
        assert len(MIGRATABLE_APPS) == 16

    def test_expected_failures(self):
        assert EXPECTED_FAILURES[app_by_title("Facebook").package] is \
            MigrationRefusal.MULTI_PROCESS
        assert EXPECTED_FAILURES[app_by_title("Subway Surfers").package] is \
            MigrationRefusal.PRESERVED_EGL_CONTEXT

    def test_packages_unique(self):
        packages = [a.package for a in TOP_APPS]
        assert len(set(packages)) == len(packages)

    def test_lookup_by_package_and_title(self):
        app = app_by_title("Candy Crush Saga")
        assert app_by_package(app.package) is app
        with pytest.raises(KeyError):
            app_by_title("Angry Birds")
        with pytest.raises(KeyError):
            app_by_package("com.missing")

    def test_manifest_flags_match_catalog(self):
        facebook = app_by_title("Facebook")
        assert facebook.apk().multi_process
        subway = app_by_title("Subway Surfers")
        assert subway.apk().calls_preserve_egl

    def test_candy_crush_fits_paper_transfer_cap(self):
        """The biggest app's compressed image must stay under 14 MB."""
        candy = app_by_title("Candy Crush Saga")
        from repro.core.cria.image import IMAGE_COMPRESSION_RATIO
        assert candy.heap_mb * IMAGE_COMPRESSION_RATIO < 14.0


class TestWorkloads:
    @pytest.fixture
    def device(self):
        return Device(NEXUS_4, SimClock(), RngFactory(9), name="wl")

    @pytest.mark.parametrize("spec", TOP_APPS, ids=lambda s: s.title)
    def test_every_workload_runs(self, device, spec):
        thread = spec.install_and_launch(device)
        assert device.activity_service.is_running(spec.package)
        activity = next(iter(thread.activities.values()))
        assert activity.visible

    def test_facebook_runs_two_processes(self, device):
        from repro.apps.social import FACEBOOK
        FACEBOOK.install_and_launch(device)
        assert len(device.app_processes(FACEBOOK.package)) == 2

    def test_subway_surfers_preserves_context(self, device):
        from repro.apps.games import SUBWAY_SURFERS
        thread = SUBWAY_SURFERS.install_and_launch(device)
        activity = next(iter(thread.activities.values()))
        gl_views = activity.view_root.gl_surface_views()
        assert any(v.preserve_egl_context_on_pause for v in gl_views)

    def test_whatsapp_leaves_expected_service_state(self, device):
        from repro.apps.social import WHATSAPP
        WHATSAPP.install_and_launch(device)
        package = WHATSAPP.package
        assert device.service("notification").snapshot(
            package)["active"]
        assert device.service("alarm").active_alarms(package)
        clipboard = device.service("clipboard")
        assert clipboard.hasClipboardText(package)

    def test_flappy_bird_receives_sensor_events(self, device):
        from repro.apps.games import FLAPPY_BIRD
        thread = FLAPPY_BIRD.install_and_launch(device)
        sensors = thread.context.get_system_service("sensor")
        assert sensors.channel_fd is not None

    def test_flashlight_torch_and_wakelock(self, device):
        from repro.apps.tools import FLASHLIGHT
        FLASHLIGHT.install_and_launch(device)
        assert device.service("camera").snapshot(
            FLASHLIGHT.package)["torch"][0]
        assert not device.kernel.wakelocks.can_sleep

    def test_workload_dirties_data_dir(self, device):
        from repro.apps.tools import BIBLE
        before_tokens = None
        BIBLE.install(device)
        prefs = f"/data/data/{BIBLE.package}/shared_prefs/prefs.xml"
        before = device.storage.get(prefs).content_hash
        device.launch_app(BIBLE.package, BIBLE.activity_cls,
                          heap_bytes=BIBLE.heap_bytes)
        BIBLE.workload(device.thread_of(BIBLE.package), device)
        BIBLE._dirty_app_data(device)
        assert device.storage.get(prefs).content_hash != before
