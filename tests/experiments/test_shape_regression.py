"""Regression: the default (extensions-off) sweep keeps the paper's shape.

The pipelined-transfer work added an opt-in fast path; this pins the
paper-faithful defaults so a future change cannot silently drag the
reproduced §4 aggregates (Figures 12-15) off the published numbers:
transfer dominates (>50% of total on average), totals average in the
single-digit seconds, and no default migration touches the chunk path.
"""

from repro.experiments.harness import run_sweep


class TestDefaultSweepShape:
    def test_transfer_dominates(self):
        sweep = run_sweep()
        assert sweep.average_stage_fraction("transfer") > 0.5

    def test_single_digit_second_averages(self):
        sweep = run_sweep()
        assert 1.0 < sweep.average_total_seconds() < 10.0
        assert 1.0 < sweep.average_perceived_seconds() < 10.0
        assert sweep.average_perceived_seconds() \
            < sweep.average_total_seconds()

    def test_non_transfer_floor_near_paper(self):
        # Paper §4: perceived time excluding data transfer ~= 1.35 s.
        sweep = run_sweep()
        assert 0.5 < sweep.average_non_transfer_seconds() < 2.5

    def test_defaults_never_touch_chunk_path(self):
        sweep = run_sweep()
        for key, report in sweep.reports.items():
            assert report.transfer_chunks_total == 0, key
            assert report.transfer_chunks_cached == 0, key
            assert report.chunk_hit_rate == 0.0, key
            assert report.image_wire_bytes \
                == report.image_compressed_bytes, key
