"""Metrics determinism: collection never perturbs the simulation, and
parallel sweeps aggregate metrics identically to serial ones."""

from repro.android.device import METRICS_ENV
from repro.android.hardware.profiles import NEXUS_4, NEXUS_7_2013
from repro.apps import app_by_title
from repro.experiments.harness import run_pair, run_sweep
from repro.sim.metrics import empty_snapshot, rollup_counters, subsystems_in


APPS = [app_by_title("ZEDGE"), app_by_title("eBay")]


class TestByteIdentity:
    def test_disabling_metrics_changes_nothing(self, monkeypatch):
        """The registry only reads the clock: the same seed must produce
        bit-identical migrations with collection on and off."""
        monkeypatch.setenv(METRICS_ENV, "1")
        with_metrics = run_pair(NEXUS_4, NEXUS_7_2013, APPS, seed=7)
        monkeypatch.setenv(METRICS_ENV, "0")
        without = run_pair(NEXUS_4, NEXUS_7_2013, APPS, seed=7)

        assert with_metrics.reports.keys() == without.reports.keys()
        for package, report in with_metrics.reports.items():
            other = without.reports[package]
            assert report.stages == other.stages, package
            assert report.total_seconds == other.total_seconds, package
            assert report.transferred_bytes == other.transferred_bytes
            assert report.dominant_stage == other.dominant_stage
            assert report.critical_path == other.critical_path

        # The disabled run really collected nothing...
        assert without.metrics == empty_snapshot()
        # ...and the enabled run really collected the instrumented layers.
        assert {"binder", "record", "replay", "chunks", "link", "cria"} \
            <= set(subsystems_in(with_metrics.metrics))

    def test_metrics_env_defaults_on(self, monkeypatch):
        monkeypatch.delenv(METRICS_ENV, raising=False)
        outcome = run_pair(NEXUS_4, NEXUS_7_2013, APPS, seed=7)
        assert outcome.metrics != empty_snapshot()


class TestParallelAggregation:
    def test_parallel_metrics_identical_to_serial(self):
        serial = run_sweep(use_cache=False, workers=1)
        parallel = run_sweep(use_cache=False, workers=4)
        assert serial.pair_metrics.keys() == parallel.pair_metrics.keys()
        for label, snapshot in serial.pair_metrics.items():
            assert snapshot == parallel.pair_metrics[label], label
        assert serial.merged_metrics() == parallel.merged_metrics()
        assert serial.app_metrics() == parallel.app_metrics()

    def test_merged_covers_every_pair(self):
        sweep = run_sweep()
        merged = sweep.merged_metrics()
        rollup = rollup_counters(merged)
        # Four pairs x sixteen apps, one checkpoint per migration.
        assert rollup["cria/checkpoints"] == len(sweep.reports)
        per_pair = sum(rollup_counters(s)["cria/checkpoints"]
                       for s in sweep.pair_metrics.values())
        assert per_pair == rollup["cria/checkpoints"]

    def test_app_partition_is_complete(self):
        sweep = run_sweep()
        apps = sweep.app_metrics()
        packages = {package for _, package in sweep.reports}
        assert packages <= set(apps)
        for package in packages:
            assert apps[package]["counters"], package
