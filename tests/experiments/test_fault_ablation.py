"""The fault_ablation experiment: resume beats from-scratch on retry."""

import pytest

from repro.experiments import fault_ablation


@pytest.fixture(scope="module")
def rows():
    return fault_ablation.run()


class TestFaultAblation:
    def test_both_configs_fault_in_transfer(self, rows):
        assert len(rows) == 2
        assert all(r.faulted_stage == "transfer" for r in rows)

    def test_rollback_invariant_holds_everywhere(self, rows):
        assert all(r.home_still_running for r in rows)
        assert all(r.guest_partial_processes == 0 for r in rows)

    def test_resume_moves_strictly_fewer_bytes(self, rows):
        scratch = next(r for r in rows if "scratch" in r.config)
        resume = next(r for r in rows if "resume" in r.config)
        # The acceptance claim: a pipelined retry after a mid-transfer
        # fault moves strictly fewer image bytes than retry-from-scratch
        # — and even than the first attempt delivered before the drop.
        assert resume.retry_wire_bytes < scratch.retry_wire_bytes
        assert resume.retry_wire_bytes < resume.first_wire_bytes
        assert resume.retry_chunk_hit_rate > 0.0
        assert scratch.retry_chunk_hit_rate == 0.0

    def test_deterministic_under_fixed_seed(self, rows):
        again = fault_ablation.run()
        assert [(r.first_wire_bytes, r.retry_wire_bytes, r.retry_seconds)
                for r in again] \
            == [(r.first_wire_bytes, r.retry_wire_bytes, r.retry_seconds)
                for r in rows]

    def test_savings_fraction_sensible(self, rows):
        savings = fault_ablation.resume_savings(rows)
        assert 0.0 < savings < 1.0

    def test_render_mentions_both_configs(self, rows):
        text = fault_ablation.render()
        assert "Fault ablation" in text
        assert "retry from scratch" in text
        assert "retry with resume" in text
