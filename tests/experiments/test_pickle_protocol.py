"""The picklable-outcome protocol behind the process-pool sweep.

Every value a sweep worker returns crosses a process boundary, so
everything in a :class:`PairOutcome` — reports with their span-derived
stages and critical paths, metrics snapshots, exported event streams,
and refusal errors — must survive ``pickle.dumps``/``loads`` *exactly*.
"Exactly" is asserted two ways: structural equality, and byte equality
of the sorted-key JSON rendering (the same rendering the byte-identity
determinism tests use).
"""

import dataclasses
import json
import pickle

import pytest

from repro.android.hardware.profiles import PAPER_DEVICE_PAIRS
from repro.apps.catalog import TOP_APPS
from repro.core.cria.errors import MigrationError, MigrationRefusal
from repro.core.migration.migration import MigrationReport
from repro.experiments.harness import PairOutcome, run_pair


def _roundtrip(value):
    return pickle.loads(pickle.dumps(value))


def _json_bytes(value):
    return json.dumps(value, sort_keys=True, default=str).encode()


@pytest.fixture(scope="module")
def outcome() -> PairOutcome:
    # The full catalog with include_failures=True is the shape with
    # every field populated: successful reports AND recorded refusals.
    home, guest = PAPER_DEVICE_PAIRS[0]
    return run_pair(home, guest, TOP_APPS, seed=0,
                    include_failures=True)


class TestMigrationReport:
    def test_report_roundtrips_structurally(self, outcome):
        for report in outcome.reports.values():
            clone = _roundtrip(report)
            assert dataclasses.asdict(clone) == dataclasses.asdict(report)

    def test_span_derived_fields_roundtrip(self, outcome):
        successes = [r for r in outcome.reports.values() if r.success]
        assert successes, "fixture pair produced no successful migrations"
        for report in successes:
            clone = _roundtrip(report)
            assert clone.stages and clone.stages == report.stages
            assert clone.critical_path == report.critical_path
            assert clone.dominant_stage == report.dominant_stage

    def test_faulted_stage_roundtrips(self):
        report = MigrationReport(
            package="com.example", home="home", guest="guest",
            success=False, refusal=MigrationRefusal.LINK_DOWN,
            stages={"checkpoint": 1.25, "transfer": 0.5},
            faulted_stage="transfer")
        clone = _roundtrip(report)
        assert clone.faulted_stage == "transfer"
        assert clone.refusal is MigrationRefusal.LINK_DOWN
        assert dataclasses.asdict(clone) == dataclasses.asdict(report)

    def test_report_json_bytes_identical(self, outcome):
        for report in outcome.reports.values():
            clone = _roundtrip(report)
            assert (_json_bytes(dataclasses.asdict(clone))
                    == _json_bytes(dataclasses.asdict(report)))


class TestMetricsAndEvents:
    def test_metrics_snapshot_roundtrips(self, outcome):
        clone = _roundtrip(outcome.metrics)
        assert clone == outcome.metrics
        assert _json_bytes(clone) == _json_bytes(outcome.metrics)

    def test_event_stream_roundtrips(self, outcome):
        clone = _roundtrip(outcome.events)
        assert clone == outcome.events
        assert _json_bytes(clone) == _json_bytes(outcome.events)


class TestPairOutcome:
    def test_whole_outcome_roundtrips(self, outcome):
        clone = _roundtrip(outcome)
        assert clone.refusals == outcome.refusals
        assert clone.metrics == outcome.metrics
        assert clone.events == outcome.events
        assert set(clone.reports) == set(outcome.reports)
        for package, report in outcome.reports.items():
            assert (dataclasses.asdict(clone.reports[package])
                    == dataclasses.asdict(report))

    def test_refusals_are_enum_members(self, outcome):
        assert outcome.refusals, "full-catalog pair had no refusals"
        clone = _roundtrip(outcome)
        for package, refusal in clone.refusals.items():
            # Enum pickling preserves identity, not just equality.
            assert refusal is outcome.refusals[package]


class TestMigrationError:
    def test_error_roundtrips_with_reason_and_detail(self):
        error = MigrationError(MigrationRefusal.MULTI_PROCESS, "two procs")
        clone = _roundtrip(error)
        assert clone.reason is MigrationRefusal.MULTI_PROCESS
        assert clone.detail == "two procs"
        assert str(clone) == str(error)

    def test_error_roundtrips_without_detail(self):
        error = MigrationError(MigrationRefusal.LINK_DOWN)
        clone = _roundtrip(error)
        assert clone.reason is MigrationRefusal.LINK_DOWN
        assert clone.detail == ""
        assert clone.is_fault

    def test_every_refusal_reason_roundtrips(self):
        for reason in MigrationRefusal:
            clone = _roundtrip(MigrationError(reason, "d"))
            assert clone.reason is reason
