"""The experiment harness itself: sweep mechanics, caching, formatting."""

import pytest

from repro.android.hardware.profiles import NEXUS_4, NEXUS_7_2013
from repro.apps import MIGRATABLE_APPS, app_by_title
from repro.experiments.harness import (
    format_table,
    pair_label,
    run_pair,
    run_sweep,
)


class TestRunPair:
    def test_deterministic_across_runs(self):
        apps = [app_by_title("ZEDGE"), app_by_title("eBay")]
        first = run_pair(NEXUS_4, NEXUS_7_2013, apps, seed=5).reports
        second = run_pair(NEXUS_4, NEXUS_7_2013, apps, seed=5).reports
        for package in first:
            assert first[package].total_seconds == \
                second[package].total_seconds
            assert first[package].transferred_bytes == \
                second[package].transferred_bytes

    def test_seed_changes_timings(self):
        apps = [app_by_title("ZEDGE")]
        a = run_pair(NEXUS_4, NEXUS_7_2013, apps, seed=1)
        b = run_pair(NEXUS_4, NEXUS_7_2013, apps, seed=2)
        (ra,) = a.reports.values()
        (rb,) = b.reports.values()
        # Link jitter differs, non-transfer stages are identical.
        assert ra.stages["transfer"] != rb.stages["transfer"]
        assert ra.stages["checkpoint"] == rb.stages["checkpoint"]

    def test_failures_raise_unless_included(self):
        from repro.core.cria.errors import MigrationError
        apps = [app_by_title("Facebook")]
        with pytest.raises(MigrationError):
            run_pair(NEXUS_4, NEXUS_7_2013, apps, seed=1)
        outcome = run_pair(NEXUS_4, NEXUS_7_2013, apps, seed=1,
                           include_failures=True)
        assert outcome.reports == {}
        assert len(outcome.refusals) == 1


class TestSweepCache:
    def test_cache_returns_same_object(self):
        a = run_sweep()
        b = run_sweep()
        assert a is b

    def test_cache_bypass(self):
        apps = [app_by_title("ZEDGE")]
        pairs = [(NEXUS_4, NEXUS_7_2013)]
        a = run_sweep(apps=apps, pairs=pairs, use_cache=False)
        b = run_sweep(apps=apps, pairs=pairs, use_cache=False)
        assert a is not b
        assert a.reports.keys() == b.reports.keys()

    def test_sweep_covers_all_cells(self):
        sweep = run_sweep()
        assert len(sweep.reports) == len(MIGRATABLE_APPS) * 4
        assert len(sweep.pair_labels) == 4


class TestParallelSweep:
    APPS = None     # full catalog

    def test_parallel_bit_identical_to_serial(self):
        serial = run_sweep(use_cache=False)
        parallel = run_sweep(use_cache=False, workers=4)
        assert serial.pair_labels == parallel.pair_labels
        assert serial.reports.keys() == parallel.reports.keys()
        for key, report in serial.reports.items():
            other = parallel.reports[key]
            assert report.stages == other.stages, key
            assert report.transferred_bytes == other.transferred_bytes, key
            assert report.total_seconds == other.total_seconds, key
        assert serial.refusals.keys() == parallel.refusals.keys()

    def test_workers_clamped_to_pair_count(self):
        from repro.experiments.harness import _resolve_workers
        assert _resolve_workers(16, 4) == 4
        assert _resolve_workers(0, 4) == 1
        assert _resolve_workers(None, 4) == 1   # env unset -> serial

    def test_env_knob_sets_default(self, monkeypatch):
        from repro.experiments.harness import (
            SWEEP_WORKERS_ENV,
            _resolve_workers,
        )
        monkeypatch.setenv(SWEEP_WORKERS_ENV, "3")
        assert _resolve_workers(None, 4) == 3
        monkeypatch.setenv(SWEEP_WORKERS_ENV, "not-a-number")
        assert _resolve_workers(None, 4) == 1
        apps = [app_by_title("ZEDGE")]
        pairs = [(NEXUS_4, NEXUS_7_2013)]
        monkeypatch.setenv(SWEEP_WORKERS_ENV, "2")
        a = run_sweep(apps=apps, pairs=pairs, use_cache=False)
        b = run_sweep(apps=apps, pairs=pairs, use_cache=False, workers=1)
        (ra,), (rb,) = a.reports.values(), b.reports.values()
        assert ra.total_seconds == rb.total_seconds


class TestFormatting:
    def test_pair_label(self):
        assert pair_label(NEXUS_4, NEXUS_7_2013) == \
            "Nexus 4 to Nexus 7 (2013)"

    def test_format_table_alignment(self):
        text = format_table(("a", "long-header"),
                            [("xxxx", 1), ("y", 22)], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert lines[1] == "="
        header, rule, row1, row2 = lines[2:]
        assert header.startswith("a    ")
        assert set(rule) <= {"-", " "}
        assert len({len(header), len(rule)}) == 1

    def test_every_experiment_renders(self):
        """Smoke: render() of each experiment yields non-empty text."""
        from repro.experiments import ALL_EXPERIMENTS
        for name, module in ALL_EXPERIMENTS.items():
            if name in ("fig16",):      # slow-ish; covered elsewhere
                continue
            text = module.render()
            assert isinstance(text, str) and len(text) > 100, name
