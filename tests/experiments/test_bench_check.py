"""The bench-check gate's comparison logic (pure, no sweep runs)."""

import pytest

from repro.experiments import bench


def _payload(**overrides):
    sim = {
        "avg_total_seconds": 10.0,
        "avg_perceived_seconds": 4.0,
        "avg_non_transfer_seconds": 2.0,
        "dominant_stages": {"transfer": 60, "checkpoint": 4},
        "counters": {"binder/transactions": 1000, "cria/pages": 5000},
    }
    sim.update(overrides.pop("sim", {}))
    wall = {
        "serial_s": 0.4,
        "thread_s": 0.3,
        "process_s": 0.2,
        "thread_speedup": 1.333,
        "process_speedup": 2.0,
        "per_pair_serial_s": {"a to b": 0.1},
    }
    wall.update(overrides.pop("wall", {}))
    payload = {
        "benchmark": "fig12_sweep_wall_clock",
        "schema": bench.SCHEMA_VERSION,
        "workers": 4,
        "executor": "process",
        "cpu_count": 4,
        "cells": 64,
        "wall": wall,
        "sim": sim,
    }
    payload.update(overrides)
    return payload


class TestCheck:
    def test_identical_payloads_pass(self):
        assert bench.check(_payload(), _payload()) == []

    def test_drift_within_band_passes(self):
        current = _payload(sim={"avg_total_seconds": 10.1})
        assert bench.check(current, _payload(), tolerance=0.02) == []

    def test_sim_timing_drift_fails(self):
        current = _payload(sim={"avg_total_seconds": 11.0})
        problems = bench.check(current, _payload(), tolerance=0.02)
        assert any("avg_total_seconds" in p for p in problems)

    def test_counter_drift_fails(self):
        current = _payload(
            sim={"counters": {"binder/transactions": 1500,
                              "cria/pages": 5000}})
        problems = bench.check(current, _payload())
        assert any("binder/transactions" in p for p in problems)

    def test_new_counter_not_in_baseline_is_fine(self):
        current = _payload(
            sim={"counters": {"binder/transactions": 1000,
                              "cria/pages": 5000,
                              "link/bytes_total": 123}})
        assert bench.check(current, _payload()) == []

    def test_cell_count_change_fails(self):
        problems = bench.check(_payload(cells=60), _payload())
        assert any("cells" in p for p in problems)

    def test_dominant_stage_mix_change_fails(self):
        current = _payload(
            sim={"dominant_stages": {"transfer": 59, "checkpoint": 5}})
        problems = bench.check(current, _payload())
        assert any("dominant-stage" in p for p in problems)

    def test_schema1_baseline_demands_update(self):
        baseline = {"benchmark": "fig12_sweep_wall_clock", "serial_s": 0.4}
        problems = bench.check(_payload(), baseline)
        assert len(problems) == 1
        assert "--update" in problems[0]

    def test_process_slowdown_fails_on_multicore(self):
        current = _payload(cpu_count=4,
                           wall={"process_speedup": 0.8})
        problems = bench.check(current, _payload())
        assert any("process-executor" in p for p in problems)

    def test_process_slowdown_skipped_on_single_core(self):
        current = _payload(cpu_count=1,
                           wall={"process_speedup": 0.8})
        assert bench.check(current, _payload()) == []

    def test_wall_never_gates_against_baseline(self):
        baseline = _payload(wall={"serial_s": 0.01, "thread_s": 0.01,
                                  "process_s": 0.01})
        assert bench.check(_payload(), baseline) == []

    def test_zero_baseline_counter_gates_exactly(self):
        baseline = _payload(
            sim={"counters": {"binder/transactions": 0,
                              "cria/pages": 5000}})
        same = _payload(
            sim={"counters": {"binder/transactions": 0,
                              "cria/pages": 5000}})
        assert bench.check(same, baseline) == []
        grown = _payload(
            sim={"counters": {"binder/transactions": 1,
                              "cria/pages": 5000}})
        assert bench.check(grown, baseline) != []


class TestDeltaFormatter:
    """The gate reuses the diff engine's formatter (one drift, one
    wording everywhere) — failures name the band edge they broke."""

    def test_timing_problem_names_the_band_edge(self):
        current = _payload(sim={"avg_total_seconds": 11.0})
        problems = bench.check(current, _payload(), tolerance=0.02)
        (problem,) = [p for p in problems if "avg_total_seconds" in p]
        assert problem == ("avg_total_seconds: 10 -> 11 "
                           "(+10.0% outside the ±2% band [9.8, 10.2])")

    def test_counter_problem_names_the_band_edge(self):
        current = _payload(
            sim={"counters": {"binder/transactions": 1500,
                              "cria/pages": 5000}})
        (problem,) = bench.check(current, _payload())
        assert problem == ("counter binder/transactions: 1000 -> 1500 "
                           "(+50.0% outside the ±2% band [980, 1020])")

    def test_wording_matches_flux_sim_diff(self):
        from repro.sim.diffing import format_delta
        current = _payload(sim={"avg_total_seconds": 11.0})
        (problem,) = [p for p in bench.check(current, _payload())
                      if "avg_total_seconds" in p]
        assert problem == format_delta("avg_total_seconds", 10.0, 11.0,
                                       bench.SIM_TOLERANCE)


def _sweep_bundle(tmp_path, transfer=2.0):
    """A tiny synthetic sweep bundle whose sim payload is easy to gate."""
    from repro.sim.bundle import collect_fingerprint, write_bundle
    metrics = {
        "schema": 1,
        "totals": {"counters": {"link/bytes_total": 100}, "gauges": {},
                   "histograms": {}},
        "rollup": {"link/bytes_total": 100, "link/transfers": 2},
        "migrations": [
            {"pair": "a to b", "package": "com.one",
             "dominant_stage": "transfer",
             "stages": {"preparation": 3.0, "checkpoint": 3.0,
                        "transfer": transfer, "restore": 2.0},
             "total_seconds": 8.0 + transfer, "critical_path": []},
        ],
    }
    return write_bundle(str(tmp_path / f"sweep_{transfer}"), kind="sweep",
                        fingerprint=collect_fingerprint(
                            "sweep", executor="serial", workers=1),
                        metrics=metrics)


class TestBundleGate:
    def test_payload_from_bundle(self, tmp_path):
        from repro.sim.bundle import RunBundle
        payload = bench.sim_payload_from_bundle(
            RunBundle.load(_sweep_bundle(tmp_path)))
        assert payload["cells"] == 1
        assert payload["cpu_count"] == 1      # skips the speedup gate
        assert payload["wall"] == {}
        sim = payload["sim"]
        assert sim["avg_total_seconds"] == 10.0
        assert sim["avg_perceived_seconds"] == 4.0    # total - prep - ckpt
        assert sim["avg_non_transfer_seconds"] == 2.0
        assert sim["dominant_stages"] == {"transfer": 1}
        assert sim["counters"]["link/bytes_total"] == 100
        assert sim["counters"]["binder/transactions"] == 0

    def test_bundle_gates_against_a_baseline(self, tmp_path):
        import json

        from repro.sim.bundle import RunBundle
        bundle = _sweep_bundle(tmp_path)
        baseline = tmp_path / "BENCH_sweep.json"
        baseline.write_text(json.dumps(
            bench.sim_payload_from_bundle(RunBundle.load(bundle))))
        code, text = bench.run_check(baseline_path=baseline, bundle=bundle)
        assert code == 0
        assert "bench check OK" in text

        slow = _sweep_bundle(tmp_path, transfer=4.0)
        code, text = bench.run_check(baseline_path=baseline, bundle=slow)
        assert code == 1
        assert "BENCH CHECK FAILED" in text
        assert "avg_total_seconds" in text and "outside the ±2% band" in text

    def test_bundle_must_be_a_sweep(self, tmp_path):
        from repro.sim.bundle import collect_fingerprint, write_bundle
        bundle = write_bundle(str(tmp_path / "m"), kind="migrate",
                              fingerprint=collect_fingerprint("migrate"),
                              metrics={"schema": 1})
        code, text = bench.run_check(bundle=bundle)
        assert code == 2
        assert "expects a sweep bundle" in text

    def test_bundle_cannot_update_the_baseline(self, tmp_path):
        code, text = bench.run_check(bundle=_sweep_bundle(tmp_path),
                                     update=True)
        assert code == 2
        assert "--update" in text

    def test_bundle_without_a_baseline(self, tmp_path):
        code, text = bench.run_check(
            baseline_path=tmp_path / "absent.json",
            bundle=_sweep_bundle(tmp_path))
        assert code == 2
        assert "no baseline" in text


class TestFormatReport:
    def test_pass_report_mentions_counters(self):
        text = bench.format_report(_payload(), _payload(), [])
        assert "bench check OK" in text
        assert "informational" in text

    def test_fail_report_lists_problems(self):
        problems = ["counter cria/pages: 5000 -> 9000 (+80.0% > 2% band)"]
        text = bench.format_report(_payload(), _payload(), problems)
        assert "BENCH CHECK FAILED" in text
        assert "cria/pages" in text


class TestRunCheck:
    @pytest.fixture
    def baseline_path(self, tmp_path):
        return tmp_path / "BENCH_sweep.json"

    def test_missing_baseline_writes_one(self, baseline_path):
        code, text = bench.run_check(baseline_path=baseline_path, workers=2)
        assert code == 0
        assert "wrote baseline" in text
        assert baseline_path.exists()
        code, text = bench.run_check(baseline_path=baseline_path, workers=2)
        assert code == 0
        assert "bench check OK" in text
