"""Contention attribution: wait profiles sum to wall time, blame is
reconstructible from the event log alone, and the timeline plane's kill
switch leaves the simulation byte-identical."""

import json

import pytest

from repro.android.hardware.profiles import PAPER_DEVICE_PAIRS
from repro.apps.catalog import MIGRATABLE_APPS
from repro.core.migration.postmortem import (
    PostmortemError,
    build_blame,
)
from repro.experiments.scenario import (
    ScenarioSpec,
    SessionSpec,
    run_scenario,
)
from repro.sim.timeline import TIMELINE_ENV

HOME_P, GUEST_P = PAPER_DEVICE_PAIRS[0]
APPS = MIGRATABLE_APPS[:2]

#: Event attrs round to 6 decimals, so log-reconstructed seconds match
#: the live profile to ~1e-6, not machine epsilon.
LOG_TOLERANCE = 5e-6

PROFILE_KEYS = {"wall_s", "admission_queue_s", "resource_wait_s",
                "link_dilation_s", "active_s"}


def _queued_scenario():
    """Two same-pair sessions: the second queues behind the first."""
    return run_scenario(ScenarioSpec(
        devices=(("home", HOME_P), ("guest", GUEST_P)),
        sessions=tuple(SessionSpec("home", "guest", app.package)
                       for app in APPS)))


def _contended_scenario():
    """Two disjoint pairs sharing one medium: both transfers dilate."""
    sessions = tuple(SessionSpec(h, g, APPS[0].package)
                     for h, g in (("home1", "guest1"), ("home2", "guest2")))
    return run_scenario(ScenarioSpec(
        devices=(("home1", HOME_P), ("guest1", GUEST_P),
                 ("home2", HOME_P), ("guest2", GUEST_P)),
        sessions=sessions))


def _assert_sums_to_wall(profile):
    decomposed = (profile["admission_queue_s"] + profile["resource_wait_s"]
                  + profile["link_dilation_s"] + profile["active_s"])
    assert decomposed == pytest.approx(profile["wall_s"], abs=1e-9)


class TestDecomposition:
    @pytest.fixture(scope="class")
    def queued(self):
        return _queued_scenario()

    @pytest.fixture(scope="class")
    def contended(self):
        return _contended_scenario()

    def test_every_profile_sums_to_wall_time(self, queued, contended):
        for result in (queued, contended):
            for outcome in result.sessions:
                assert set(outcome.wait_profile) == PROFILE_KEYS
                _assert_sums_to_wall(outcome.wait_profile)

    def test_queued_session_blames_the_admission_queue(self, queued):
        first, second = queued.sessions
        assert first.wait_profile["admission_queue_s"] == 0.0
        # The second session queues for exactly the first's wall time.
        assert second.wait_profile["admission_queue_s"] == pytest.approx(
            first.wait_profile["wall_s"], abs=1e-9)
        assert second.queued_seconds == \
            second.wait_profile["admission_queue_s"]

    def test_contended_sessions_blame_link_dilation(self, contended):
        for outcome in contended.sessions:
            profile = outcome.wait_profile
            assert profile["admission_queue_s"] == 0.0
            assert profile["link_dilation_s"] > 0.0
            # Dilation alone never exceeds the extra wall time the
            # session observed over running its work uncontended.
            assert profile["link_dilation_s"] < profile["wall_s"]

    def test_profile_lands_on_the_report(self, queued):
        for outcome in queued.sessions:
            assert outcome.report.wait_profile == outcome.wait_profile

    def test_makespan_and_utilization(self, queued):
        assert queued.makespan > 0.0
        assert set(queued.device_utilization) == {"home", "guest"}
        for utilization in queued.device_utilization.values():
            assert 0.0 < utilization <= 1.0


class TestBlameFromTheLogAlone:
    @pytest.fixture(scope="class")
    def queued(self):
        return _queued_scenario()

    @pytest.fixture(scope="class")
    def contended(self):
        return _contended_scenario()

    def _assert_blame_matches(self, result, outcome):
        blame = build_blame(result.events, outcome.session)
        profile = outcome.wait_profile
        live = {
            "queued": profile["admission_queue_s"]
            + profile["resource_wait_s"],
            "link dilation": profile["link_dilation_s"],
            "own work": profile["active_s"],
        }
        assert {e["kind"] for e in blame["entries"]} == set(live)
        for entry in blame["entries"]:
            assert entry["seconds"] == pytest.approx(
                live[entry["kind"]], abs=LOG_TOLERANCE)
        assert blame["wall_s"] == pytest.approx(
            profile["wall_s"], abs=LOG_TOLERANCE)

    def test_blame_reproduces_queued_profiles(self, queued):
        for outcome in queued.sessions:
            self._assert_blame_matches(queued, outcome)

    def test_blame_reproduces_contended_profiles(self, contended):
        for outcome in contended.sessions:
            self._assert_blame_matches(contended, outcome)

    def test_blame_names_the_blocking_session(self, queued):
        first, second = queued.sessions
        blame = build_blame(queued.events, second.session)
        (queued_entry,) = [e for e in blame["entries"]
                           if e["kind"] == "queued"]
        assert first.session in queued_entry["detail"]

    def test_entries_rank_most_expensive_first(self, queued, contended):
        for result in (queued, contended):
            for outcome in result.sessions:
                blame = build_blame(result.events, outcome.session)
                seconds = [e["seconds"] for e in blame["entries"]]
                assert seconds == sorted(seconds, reverse=True)

    def test_unknown_session_raises(self, queued):
        with pytest.raises(PostmortemError, match="no migration session"):
            build_blame(queued.events, "home/nope@9")


class TestTimelineKillSwitch:
    def _digest(self, result):
        reports = {
            outcome.session: outcome.report.stages
            for outcome in result.sessions}
        return json.dumps({
            "reports": reports,
            "metrics": result.metrics,
            "events": result.events,
        }, sort_keys=True, default=str)

    def test_disabling_the_timeline_changes_nothing(self, monkeypatch):
        monkeypatch.setenv(TIMELINE_ENV, "1")
        with_timeline = _queued_scenario()
        monkeypatch.setenv(TIMELINE_ENV, "0")
        without = _queued_scenario()
        assert self._digest(with_timeline) == self._digest(without)
        # Profiles come from the scheduler ledger, not the timeline.
        for enabled, disabled in zip(with_timeline.sessions,
                                     without.sessions):
            assert enabled.wait_profile == disabled.wait_profile
        assert without.timeline == {}
        assert with_timeline.timeline

    def test_enabled_scenario_collects_the_expected_series(self,
                                                           monkeypatch):
        monkeypatch.setenv(TIMELINE_ENV, "1")
        result = _queued_scenario()
        names = {key.partition("{")[0] for key in result.timeline}
        assert {"link/share", "medium/active_flows",
                "resource/queue_depth",
                "scheduler/sessions_in_flight"} <= names

    def test_repeated_runs_export_identical_series(self, monkeypatch):
        monkeypatch.setenv(TIMELINE_ENV, "1")
        first = _contended_scenario()
        second = _contended_scenario()
        assert json.dumps(first.timeline, sort_keys=True) == \
            json.dumps(second.timeline, sort_keys=True)

    def test_pair_run_is_byte_identical_with_timeline_off(self,
                                                          monkeypatch):
        from repro.experiments.harness import run_pair
        monkeypatch.setenv(TIMELINE_ENV, "1")
        with_timeline = run_pair(HOME_P, GUEST_P, APPS, seed=7)
        monkeypatch.setenv(TIMELINE_ENV, "0")
        without = run_pair(HOME_P, GUEST_P, APPS, seed=7)
        for package, report in with_timeline.reports.items():
            assert report.stages == without.reports[package].stages
        assert with_timeline.metrics == without.metrics
        assert with_timeline.events == without.events
        assert without.timeline == {}
        # The enabled pair run samples the links it transfers over.
        names = {key.partition("{")[0] for key in with_timeline.timeline}
        assert "link/busy" in names


class TestRefusedSessionExplain:
    def test_refused_postmortem_renders_without_percentages(self):
        """A refusal has 0.0s of stage time; the critical-path block
        must not divide by that zero (and shows no bogus shares)."""
        from repro.apps import app_by_title
        from repro.core.migration.postmortem import (
            build_postmortem,
            render_postmortem,
        )
        from repro.experiments.harness import run_pair
        outcome = run_pair(HOME_P, GUEST_P, [app_by_title("Facebook")],
                           seed=0, include_failures=True)
        assert outcome.refusals
        postmortem = build_postmortem(outcome.events)
        assert postmortem["outcome"] == "refused"
        text = render_postmortem(postmortem)
        assert "REFUSED" in text
        assert "%" not in text.split("causal chain")[0].split(
            "events per stage")[-1]
