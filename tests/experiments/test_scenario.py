"""Scenario runner: byte-identity, concurrency, admission, contention."""

import dataclasses
import json

import pytest

from repro.android.hardware.profiles import PAPER_DEVICE_PAIRS
from repro.apps.catalog import MIGRATABLE_APPS
from repro.core.cria.errors import MigrationRefusal
from repro.core.migration.postmortem import build_postmortem
from repro.experiments import contention
from repro.experiments.harness import run_pair
from repro.experiments.scenario import (
    ScenarioError,
    ScenarioSpec,
    SessionSpec,
    run_scenario,
)

HOME_P, GUEST_P = PAPER_DEVICE_PAIRS[0]
APPS = MIGRATABLE_APPS[:3]


def _reports_json(reports, strip=()):
    as_dicts = {k: dataclasses.asdict(v) for k, v in reports.items()}
    for report in as_dicts.values():
        for key in strip:
            report.pop(key, None)
    return json.dumps(as_dicts, sort_keys=True, default=str)


def _pair_world(sessions, **kwargs):
    return ScenarioSpec(devices=(("home", HOME_P), ("guest", GUEST_P)),
                        sessions=tuple(sessions), **kwargs)


def _four_device_world(sessions, **kwargs):
    return ScenarioSpec(
        devices=(("home1", HOME_P), ("guest1", GUEST_P),
                 ("home2", HOME_P), ("guest2", GUEST_P)),
        sessions=tuple(sessions), **kwargs)


class TestByteIdentity:
    def test_single_pair_scenario_matches_run_pair_exactly(self):
        """The whole acceptance contract: reports, metrics snapshots and
        event streams from a queued scenario are byte-identical to the
        legacy synchronous ``run_pair`` on the same profiles and seed."""
        pair = run_pair(HOME_P, GUEST_P, APPS, seed=0)
        # Tiny staggered starts pin the canonical order to catalog
        # order; same-pair sessions queue, so they run back to back
        # exactly as run_pair migrates them.
        scenario = run_scenario(_pair_world(
            SessionSpec("home", "guest", app.package, start=i * 1e-6)
            for i, app in enumerate(APPS)))
        # wait_profile is scenario-layer enrichment (run_pair has no
        # admission queue to decompose); everything else is bit-equal.
        assert _reports_json(scenario.reports, strip=("wait_profile",)) \
            == _reports_json(pair.reports, strip=("wait_profile",))
        assert json.dumps(scenario.metrics, sort_keys=True) == \
            json.dumps(pair.metrics, sort_keys=True)
        # Admission events live on the world-level recorder, leaving the
        # per-device streams byte-identical to the synchronous pair run.
        device_events = [e for e in scenario.events
                         if e["device"] != "world"]
        assert json.dumps(device_events, sort_keys=True) == \
            json.dumps(pair.events, sort_keys=True)

    def test_single_session_outcome_shape(self):
        app = APPS[0]
        result = run_scenario(_pair_world(
            [SessionSpec("home", "guest", app.package)]))
        outcome = result.outcome_for(app.package)
        assert outcome.status == "migrated"
        assert outcome.session == f"home/{app.package}@0"
        assert outcome.queued_seconds == 0.0
        assert outcome.report.success


class TestSubmissionOrderIndependence:
    def test_reversed_submission_produces_identical_telemetry(self):
        sessions = [SessionSpec(h, g, APPS[0].package)
                    for h, g in (("home1", "guest1"), ("home2", "guest2"))]
        forward = run_scenario(_four_device_world(sessions))
        backward = run_scenario(_four_device_world(reversed(sessions)))
        assert json.dumps(forward.events, sort_keys=True) == \
            json.dumps(backward.events, sort_keys=True)
        assert json.dumps(forward.metrics, sort_keys=True) == \
            json.dumps(backward.metrics, sort_keys=True)

    def test_same_pair_queue_order_is_canonical(self):
        sessions = [SessionSpec("home", "guest", app.package)
                    for app in APPS]
        forward = run_scenario(_pair_world(sessions))
        backward = run_scenario(_pair_world(reversed(sessions)))
        assert json.dumps(forward.events, sort_keys=True) == \
            json.dumps(backward.events, sort_keys=True)


class TestAdmissionControl:
    def test_queue_serialises_same_pair_sessions(self):
        result = run_scenario(_pair_world(
            SessionSpec("home", "guest", app.package)
            for app in APPS[:2]))
        # Equal starts: canonical order (package-sorted) decides who
        # goes first; result.sessions is already in that order.
        first, second = result.sessions
        assert first.status == second.status == "migrated"
        assert first.queued_seconds == 0.0
        assert second.queued_seconds > 0.0
        assert second.started >= first.finished

    def test_refuse_rejects_the_concurrent_session(self):
        result = run_scenario(_pair_world(
            (SessionSpec("home", "guest", app.package)
             for app in APPS[:2]), admission="refuse"))
        first, second = result.sessions
        assert first.status == "migrated"
        assert second.status == "rejected"
        assert second.refusal is MigrationRefusal.DEVICE_BUSY
        assert second.report is None and second.session == ""

    def test_refuse_allows_disjoint_pairs(self):
        sessions = [SessionSpec(h, g, APPS[0].package)
                    for h, g in (("home1", "guest1"), ("home2", "guest2"))]
        result = run_scenario(_four_device_world(sessions,
                                                 admission="refuse"))
        assert all(o.status == "migrated" for o in result.sessions)


class TestSpecValidation:
    def test_unknown_device_rejected(self):
        with pytest.raises(ScenarioError, match="unknown devices"):
            _pair_world([SessionSpec("home", "nowhere", APPS[0].package)])

    def test_duplicate_device_names_rejected(self):
        with pytest.raises(ScenarioError, match="duplicate"):
            ScenarioSpec(devices=(("a", HOME_P), ("a", GUEST_P)),
                         sessions=())

    def test_self_migration_rejected(self):
        with pytest.raises(ScenarioError, match="itself"):
            _pair_world([SessionSpec("home", "home", APPS[0].package)])

    def test_unknown_admission_policy_rejected(self):
        with pytest.raises(ScenarioError, match="admission"):
            _pair_world([], admission="coin-flip")

    def test_negative_start_rejected(self):
        with pytest.raises(ScenarioError, match="negative"):
            _pair_world([SessionSpec("home", "guest", APPS[0].package,
                                     start=-1.0)])


class TestExplainSegmentation:
    def test_interleaved_sessions_do_not_cross_contaminate(self):
        sessions = [SessionSpec(h, g, APPS[0].package)
                    for h, g in (("home1", "guest1"), ("home2", "guest2"))]
        result = run_scenario(_four_device_world(sessions))
        labels = [o.session for o in result.sessions]
        assert len(set(labels)) == 2
        for outcome in result.sessions:
            pm = build_postmortem(result.events, session=outcome.session)
            assert pm["session"] == outcome.session
            assert pm["outcome"] == "succeeded"
            assert pm["home"] == outcome.spec.home
            assert pm["guest"] == outcome.spec.guest
            # Every event in the segment that carries a session label
            # carries THIS session's label.
            chain_sessions = {
                e.get("attrs", {}).get("session")
                for e in pm["causal_chain"] + pm["tail"]}
            assert chain_sessions <= {outcome.session, None}

    def test_unknown_session_label_raises(self):
        from repro.core.migration.postmortem import PostmortemError
        result = run_scenario(_pair_world(
            [SessionSpec("home", "guest", APPS[0].package)]))
        with pytest.raises(PostmortemError, match="no migration session"):
            build_postmortem(result.events, session="home/nope@9")


class TestContentionExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        return contention.run()

    def test_fair_share_slowdown(self, result):
        assert len(result.rows) == 2
        for row in result.rows:
            # Full overlap would be exactly 2.0x; the non-wire stages
            # never contend, so the transfers only partially overlap.
            assert 1.3 <= row.slowdown <= 2.2

    def test_wire_bytes_conserved(self, result):
        # Contention spreads work over wall time; every session still
        # moves exactly its solo byte count.
        assert len({row.wire_bytes for row in result.rows}) == 1
        assert result.rows[0].wire_bytes > 0

    def test_deterministic_interleaving(self, result):
        assert result.deterministic
        assert len(result.events_digest) == 16

    def test_render_mentions_the_contract(self):
        text = contention.render()
        assert "slowdown" in text
        assert "submission-order independent: True" in text
