"""The table/figure experiments reproduce the paper's claims.

These are the repository's headline assertions: each test pins one of
the paper's published aggregates.  The migration sweep is shared across
tests via the harness's in-process cache.
"""

import pytest

from repro.experiments import (
    app_support,
    fig12,
    fig13,
    fig14,
    fig15,
    fig16,
    fig17,
    pairing_cost,
    table2,
    table3,
)
from repro.experiments.harness import run_sweep


@pytest.fixture(scope="module")
def sweep():
    return run_sweep()


class TestTable2:
    def test_every_paper_service_present(self):
        rows = table2.run()
        assert len(rows) == 22
        assert sum(1 for r in rows if r.hardware) == 14

    def test_undecorated_services_match_paper_tbd(self):
        rows = {r.service: r for r in table2.run()}
        for service in ("bluetooth", "serial", "usb"):
            assert rows[service].paper_loc is None
            assert rows[service].our_decoration_loc is None

    def test_decoration_is_tens_of_lines(self):
        for row in table2.run():
            if row.our_decoration_loc is not None:
                assert 0 < row.our_decoration_loc <= 60

    def test_larger_interfaces_take_more_decoration(self):
        """Structural claim: decoration LOC grows with interface size."""
        rows = [r for r in table2.run() if r.our_decoration_loc]
        big = [r for r in rows if r.our_methods >= 14]
        small = [r for r in rows if r.our_methods <= 5]
        avg = lambda xs: sum(xs) / len(xs)
        assert avg([r.our_decoration_loc for r in big]) > \
            avg([r.our_decoration_loc for r in small])

    def test_render(self):
        text = table2.render()
        assert "IAudioService" in text and "TBD" in text


class TestTable3:
    def test_workloads_match_paper(self):
        rows = {r.title: r for r in table3.run()}
        for title, workload in table3.PAPER_TABLE3.items():
            assert rows[title].workload.replace("'", "'") \
                == workload.replace("'", "'")

    def test_two_unmigratable(self):
        rows = table3.run()
        refused = [r.title for r in rows if not r.migratable]
        assert sorted(refused) == ["Facebook", "Subway Surfers"]


class TestFig12:
    def test_average_total_near_paper(self, sweep):
        ours = fig12.average_total(sweep)
        assert ours == pytest.approx(fig12.PAPER_AVERAGE_TOTAL_SECONDS,
                                     rel=0.15)

    def test_every_cell_populated_and_interactive(self, sweep):
        for row in fig12.run(sweep):
            for seconds in row.seconds_by_pair.values():
                assert 0 < seconds < 30

    def test_slower_pair_is_slower(self, sweep):
        """Nexus 7 (2012) pairs ride the congested 2.4 GHz band."""
        for row in fig12.run(sweep):
            fast = row.seconds_by_pair["Nexus 7 (2013) to Nexus 7 (2013)"]
            slow = row.seconds_by_pair["Nexus 7 (2012) to Nexus 4"]
            assert slow > fast


class TestFig13:
    def test_transfer_dominates(self, sweep):
        assert fig13.average_transfer_fraction(sweep) > \
            fig13.PAPER_TRANSFER_FRACTION_MIN

    def test_fractions_sum_to_one(self, sweep):
        for row in fig13.run(sweep):
            assert sum(row.fractions.values()) == pytest.approx(1.0)

    def test_relative_costs_fairly_constant(self, sweep):
        """Paper: 'the relative cost of each migration stage is fairly
        constant' across apps."""
        rows = fig13.run(sweep)
        transfer_shares = [r.fractions["transfer"] for r in rows]
        assert max(transfer_shares) - min(transfer_shares) < 0.35


class TestFig14:
    def test_non_transfer_average_near_paper(self, sweep):
        avg = fig14.averages(sweep)
        assert avg["non_transfer"] == pytest.approx(
            fig14.PAPER_AVERAGE_NON_TRANSFER_SECONDS, rel=0.2)

    def test_perceived_average_near_paper(self, sweep):
        avg = fig14.averages(sweep)
        assert avg["perceived"] == pytest.approx(
            fig14.PAPER_AVERAGE_PERCEIVED_SECONDS, rel=0.15)


class TestFig15:
    def test_no_migration_over_14mb(self, sweep):
        for row in fig15.run(sweep):
            assert row.transferred_mb <= fig15.PAPER_MAX_TRANSFER_MB

    def test_sync_plus_log_under_200kb(self, sweep):
        for row in fig15.run(sweep):
            assert (row.data_sync_kb + row.record_log_kb) < \
                fig15.PAPER_MAX_SYNC_PLUS_LOG_KB

    def test_transfer_dominated_by_image(self, sweep):
        for row in fig15.run(sweep):
            assert row.image_mb > 0.8 * row.transferred_mb

    def test_correlates_with_apk_size(self, sweep):
        assert fig15.correlation_with_apk_size(sweep) > 0.5


class TestFig16:
    def test_overhead_negligible(self):
        scores = fig16.run()
        assert len(scores) == 18    # 6 benchmarks x 3 devices
        for score in scores:
            assert score.overhead_percent < \
                fig16.PAPER_MAX_OVERHEAD_PERCENT
            assert score.normalized <= 1.0


class TestFig17:
    def test_cdf_anchors(self):
        points = dict(fig17.run(count=30_000))
        from repro.sim import units
        assert points[units.MB] == pytest.approx(0.60, abs=0.03)
        assert points[10 * units.MB] == pytest.approx(0.90, abs=0.03)


class TestAppSupport:
    def test_sixteen_of_eighteen(self):
        rows = app_support.run()
        migrated = [r for r in rows if r.migrated]
        assert len(migrated) == 16
        refusals = {r.title: r.refusal.value for r in rows if not r.migrated}
        assert refusals == {"Facebook": "multi-process",
                            "Subway Surfers": "preserved-egl-context"}


class TestPairingCost:
    def test_paper_numbers(self):
        result = pairing_cost.run()
        assert result.constant_mb == pytest.approx(215, abs=1)
        assert result.after_link_mb == pytest.approx(123, abs=1)
        assert result.compressed_mb == pytest.approx(56, abs=1.5)
        assert len(result.per_app) == 18


class TestTable1:
    def test_all_constructs_verified(self):
        from repro.experiments import table1
        rows = table1.run()
        assert len(rows) == 5
        syntaxes = {r.syntax.split()[0] for r in rows}
        assert {"@record", "@drop", "@if", "@replayproxy", "this"} <= syntaxes

    def test_render(self):
        from repro.experiments import table1
        text = table1.render()
        assert "@replayproxy" in text and "verified against the parser" in text
