"""Fleet layer: determinism, sharding, SLOs, conservation properties."""

import json

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.android.hardware.profiles import PAPER_DEVICE_PAIRS
from repro.apps.catalog import MIGRATABLE_APPS
from repro.core.migration.postmortem import build_blame
from repro.experiments import placement_ablation
from repro.experiments.fleet import (
    FleetError,
    FleetSpec,
    build_sites,
    fleet_metrics_document,
    fleet_slo,
    merge_site_outcomes,
    place_site,
    run_fleet,
    run_site,
    site_demands,
)
from repro.experiments.scenario import (
    ScenarioError,
    ScenarioSpec,
    SessionSpec,
    run_scenario,
)
from repro.sim.metrics import rollup_counters

PINNED = FleetSpec(devices=12, arrivals=40, seed=7, policy="cost-model")


def _document_json(spec, result):
    return json.dumps(fleet_metrics_document(spec, result),
                      sort_keys=True)


class TestPopulation:
    def test_sites_partition_the_population(self):
        sites = build_sites(PINNED)
        assert [s.name for s in sites] == ["site0", "site1", "site2"]
        names = [name for site in sites for name, _ in site.devices]
        assert names == [f"dev{i:02d}" for i in range(12)]
        assert sum(site.arrivals for site in sites) == 40

    def test_trailing_singleton_folds_into_previous_site(self):
        sites = build_sites(FleetSpec(devices=9, arrivals=9, site_size=4))
        assert [len(site.devices) for site in sites] == [4, 5]

    def test_arrivals_beyond_catalog_capacity_error(self):
        with pytest.raises(FleetError, match="catalog"):
            build_sites(FleetSpec(devices=4, arrivals=30))

    def test_spec_validation(self):
        with pytest.raises(FleetError):
            FleetSpec(devices=1)
        with pytest.raises(FleetError):
            FleetSpec(policy="random")
        with pytest.raises(FleetError):
            FleetSpec(admission="drop")

    def test_demands_are_deterministic_and_home_feasible(self):
        site = build_sites(PINNED)[1]
        demands = site_demands(PINNED, site)
        assert demands == site_demands(PINNED, site)
        assert len({d.package for d in demands}) == len(demands)
        arrivals = [d.arrival for d in demands]
        assert arrivals == sorted(arrivals)


class TestPlacementCompile:
    def test_placed_sessions_carry_their_decision(self):
        site = build_sites(PINNED)[0]
        sessions, rows = place_site(PINNED, site,
                                    site_demands(PINNED, site))
        assert sessions
        for session in sessions:
            attrs = dict(session.placement)
            assert attrs["policy"] == "cost-model"
            assert attrs["guest"] == session.guest

    def test_shed_admission_drops_demands_at_depth(self):
        spec = FleetSpec(devices=12, arrivals=40, seed=7,
                         admission="shed", shed_depth=1)
        queued = run_fleet(PINNED)
        shed = run_fleet(spec)
        assert shed.slo["shed"] > 0
        assert shed.slo["shed_rate"] > 0.0
        assert shed.slo["migrated"] < queued.slo["migrated"]


class TestDeterminism:
    def test_rerun_is_byte_identical(self):
        first = run_fleet(PINNED)
        again = run_fleet(PINNED)
        assert _document_json(PINNED, first) == _document_json(PINNED,
                                                               again)

    def test_shard_groups_merge_byte_identically(self):
        unsharded = _document_json(PINNED, run_fleet(PINNED))
        for shards in (2, 3):
            sharded = _document_json(
                PINNED, run_fleet(PINNED, shard_count=shards))
            assert sharded == unsharded

    def test_process_executor_is_byte_identical(self):
        serial = _document_json(PINNED, run_fleet(PINNED,
                                                  executor="serial"))
        process = _document_json(
            PINNED, run_fleet(PINNED, workers=2, executor="process"))
        assert serial == process

    def test_partial_shards_cover_the_fleet_exactly(self):
        full = run_fleet(PINNED)
        parts = [run_fleet(PINNED, shard=(k, 2)) for k in range(2)]
        assert sorted(s for part in parts for s in part.sites) == sorted(
            full.sites)
        part_rows = [row["session"] for part in parts
                     for row in part.rows]
        assert sorted(part_rows, key=str) == sorted(
            (row["session"] for row in full.rows), key=str)


class TestReport:
    def test_slo_percentiles_nearest_rank(self):
        rows = [{"status": "migrated",
                 "wait_profile": {"wall_s": float(w)}}
                for w in range(1, 101)]
        slo = fleet_slo(rows)
        assert slo["p50_s"] == 50.0
        assert slo["p95_s"] == 95.0
        assert slo["p99_s"] == 99.0

    def test_slo_counts_refusals_and_sheds(self):
        rows = [{"status": "migrated", "wait_profile": {"wall_s": 1.0}},
                {"status": "refused", "wait_profile": None},
                {"status": "rejected", "wait_profile": None},
                {"status": "shed", "wait_profile": None}]
        slo = fleet_slo(rows)
        assert slo["refusal_rate"] == 0.5
        assert slo["shed_rate"] == 0.25

    def test_document_shape(self):
        result = run_fleet(PINNED)
        document = fleet_metrics_document(PINNED, result)
        assert document["schema"] == 1
        fleet = document["fleet"]
        assert fleet["policy"] == "cost-model"
        assert fleet["sites"] == ["site0", "site1", "site2"]
        assert len(fleet["sessions"]) == fleet["slo"]["demands"]
        assert set(fleet["device_utilization"]) == {
            f"dev{i:02d}" for i in range(12)}
        assert set(fleet["medium_utilization"]) == {"site0", "site1",
                                                    "site2"}
        assert document["rollup"]["link/bytes_total"] > 0

    def test_events_are_site_tagged_and_timeline_site_folded(self):
        result = run_fleet(PINNED)
        assert result.events
        assert {e["site"] for e in result.events} == set(result.sites)
        assert result.timeline
        for key in result.timeline:
            assert "site=" in key

    def test_blame_names_the_placement_decision(self):
        result = run_fleet(PINNED)
        migrated = next(row for row in result.rows
                        if row["status"] == "migrated")
        blame = build_blame(result.events, migrated["session"])
        placement = blame["placement"]
        assert placement["policy"] == "cost-model"
        assert placement["guest"] == migrated["guest"]


class TestFleetConservation:
    def test_merged_wire_bytes_equal_site_sums(self):
        sites = build_sites(PINNED)
        outcomes = [run_site(PINNED, site) for site in sites]
        merged = merge_site_outcomes(PINNED, sites, outcomes)
        per_site = sum(rollup_counters(o.metrics)["link/bytes_total"]
                       for o in outcomes)
        assert rollup_counters(merged.metrics)["link/bytes_total"] == \
            pytest.approx(per_site)

    def test_wait_profiles_sum_to_wall(self):
        result = run_fleet(PINNED)
        checked = 0
        for row in result.rows:
            profile = row.get("wait_profile")
            if not profile:
                continue
            checked += 1
            decomposed = (profile["admission_queue_s"]
                          + profile["resource_wait_s"]
                          + profile["link_dilation_s"]
                          + profile["active_s"])
            assert decomposed == pytest.approx(profile["wall_s"],
                                               abs=1e-4)
        assert checked > 0


@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(min_value=0, max_value=2**32 - 1),
       devices=st.integers(min_value=4, max_value=6),
       arrivals=st.integers(min_value=4, max_value=8),
       policy=st.sampled_from(("capability", "least-loaded",
                               "cost-model")))
def test_fleet_invariants_hold_for_any_seed(seed, devices, arrivals,
                                            policy):
    """For any seeded fleet: shard-merge is byte-identical to the
    unsharded run, wire bytes are conserved across the merge, and
    every session's wait profile sums to its wall time."""
    spec = FleetSpec(devices=devices, arrivals=arrivals, seed=seed,
                     policy=policy)
    sites = build_sites(spec)
    outcomes = [run_site(spec, site) for site in sites]
    merged = merge_site_outcomes(spec, sites, outcomes)

    sharded = run_fleet(spec, shard_count=2)
    assert _document_json(spec, sharded) == _document_json(spec, merged)

    per_site = sum(rollup_counters(o.metrics).get("link/bytes_total", 0)
                   for o in outcomes)
    assert rollup_counters(merged.metrics).get(
        "link/bytes_total", 0) == pytest.approx(per_site)

    for row in merged.rows:
        profile = row.get("wait_profile")
        if not profile:
            continue
        decomposed = (profile["admission_queue_s"]
                      + profile["resource_wait_s"]
                      + profile["link_dilation_s"] + profile["active_s"])
        assert decomposed == pytest.approx(profile["wall_s"], abs=1e-4)


class TestScenarioSatellites:
    def test_zero_makespan_utilization_is_zero_per_device(self):
        # A scenario with no sessions never accrues a makespan; the
        # utilization map must still name every device, at 0.0.
        home_p, guest_p = PAPER_DEVICE_PAIRS[0]
        spec = ScenarioSpec(devices=(("home", home_p), ("guest", guest_p)),
                            sessions=())
        result = run_scenario(spec)
        assert result.makespan == 0.0
        assert result.device_utilization == {"home": 0.0, "guest": 0.0}

    def test_duplicate_home_package_sessions_rejected(self):
        home_p, guest_p = PAPER_DEVICE_PAIRS[0]
        package = MIGRATABLE_APPS[0].package
        with pytest.raises(ScenarioError,
                           match=r"duplicate \(home, package\)"):
            ScenarioSpec(
                devices=(("home", home_p), ("guest", guest_p)),
                sessions=(SessionSpec("home", "guest", package),
                          SessionSpec("home", "guest", package,
                                      start=5.0)))

    def test_distinct_routes_for_same_package_still_allowed(self):
        home_p, guest_p = PAPER_DEVICE_PAIRS[0]
        package = MIGRATABLE_APPS[0].package
        spec = ScenarioSpec(
            devices=(("a", home_p), ("b", guest_p), ("c", guest_p)),
            sessions=(SessionSpec("a", "b", package),
                      SessionSpec("c", "b", MIGRATABLE_APPS[1].package)))
        assert len(spec.sessions) == 2


class TestAblation:
    def test_cost_model_beats_least_loaded_on_p95(self):
        result = placement_ablation.run()
        cost = result.row_for("cost-model")
        loaded = result.row_for("least-loaded")
        assert cost.p95_s < loaded.p95_s
        # Identical demand: the feasibility gate is policy-independent.
        assert cost.refused == loaded.refused

    def test_render_names_the_headline_delta(self):
        text = placement_ablation.render()
        assert "cost-model vs least-loaded p95" in text
