"""The ``--profile-out`` plane: deterministic per-pair cProfile reports."""

from repro.android.hardware.profiles import NEXUS_4, NEXUS_7_2013
from repro.apps import app_by_title
from repro.experiments.profiling import (
    _strip_path,
    profile_sweep,
    top_offenders,
    write_profile,
)

PAIRS = [(NEXUS_4, NEXUS_7_2013)]
APPS = [app_by_title("ZEDGE")]


class TestStripPath:
    def test_repo_paths_become_relative(self):
        assert (_strip_path("/home/x/src/repro/sim/metrics.py")
                == "repro/sim/metrics.py")

    def test_rightmost_marker_wins(self):
        assert (_strip_path("/a/repro/b/src/repro/core/x.py")
                == "repro/core/x.py")

    def test_foreign_paths_pass_through(self):
        assert _strip_path("/usr/lib/python3.11/json/encoder.py") \
            == "/usr/lib/python3.11/json/encoder.py"


class TestProfileSweep:
    def test_report_has_one_section_per_pair(self):
        report = profile_sweep(apps=APPS, pairs=PAIRS, top=5)
        assert "Nexus 4 to Nexus 7 (2013)" in report
        assert "wall:" in report
        assert "tottime" in report

    def test_rows_are_limited_and_parseable(self):
        report = profile_sweep(apps=APPS, pairs=PAIRS, top=5)
        rows = [line for line in report.splitlines()
                if line.split() and line.split()[0].isdigit()]
        assert 0 < len(rows) <= 5
        for row in rows:
            calls, tottime, cumtime, _location = row.split(None, 3)
            assert int(calls) >= 0
            assert float(cumtime) >= float(tottime) >= 0.0

    def test_locations_are_machine_independent(self):
        report = profile_sweep(apps=APPS, pairs=PAIRS, top=10)
        for offender in top_offenders(report, count=5):
            assert not offender.startswith("/root/repo")

    def test_top_offenders_extracts_locations(self):
        report = profile_sweep(apps=APPS, pairs=PAIRS, top=10)
        offenders = top_offenders(report, count=3)
        assert len(offenders) == 3
        assert all("(" in o for o in offenders)


class TestWriteProfile:
    def test_writes_report_to_path(self, tmp_path):
        out = tmp_path / "profile.txt"
        report = write_profile(str(out), apps=APPS, pairs=PAIRS, top=5)
        assert out.read_text(encoding="utf-8") == report
        assert "Nexus 4 to Nexus 7 (2013)" in report

    def test_precomputed_report_is_written_verbatim(self, tmp_path):
        out = tmp_path / "profile.txt"
        assert write_profile(str(out), report="canned\n") == "canned\n"
        assert out.read_text(encoding="utf-8") == "canned\n"
