"""The sweep executor layer: selection, determinism, and the LRU cache.

The headline contract: ``run_sweep`` produces byte-identical results —
sorted-key JSON of the reports, merged metrics, and merged events — no
matter which executor ran it (serial, thread pool, process pool) or
which multiprocessing start method launched the workers.
"""

import dataclasses
import json
import os

import pytest

from repro.android.hardware.profiles import (NEXUS_4, NEXUS_7_2012,
                                             NEXUS_7_2013)
from repro.apps import app_by_title
from repro.experiments import harness
from repro.experiments.harness import (
    SWEEP_EXECUTOR_ENV,
    SweepResult,
    _resolve_executor,
    _resolve_workers,
    clear_sweep_cache,
    run_sweep,
)

#: A small sweep (2 pairs x 2 apps) keeps the executor matrix fast.
PAIRS = [(NEXUS_4, NEXUS_7_2013), (NEXUS_7_2012, NEXUS_4)]
APPS = [app_by_title("ZEDGE"), app_by_title("eBay")]


def _fingerprint(sweep: SweepResult) -> bytes:
    """Sorted-key JSON bytes of everything a sweep produces."""
    doc = {
        "labels": sweep.pair_labels,
        "reports": {f"{pair}/{pkg}": dataclasses.asdict(report)
                    for (pair, pkg), report in sorted(sweep.reports.items())},
        "refusals": {f"{pair}/{pkg}": refusal.value
                     for (pair, pkg), refusal
                     in sorted(sweep.refusals.items())},
        "metrics": sweep.merged_metrics(),
        "events": sweep.merged_events(),
        "timelines": sweep.merged_timelines(),
    }
    return json.dumps(doc, sort_keys=True, default=str).encode()


def _sweep(**kwargs) -> SweepResult:
    return run_sweep(apps=APPS, pairs=PAIRS, use_cache=False, **kwargs)


class TestByteIdentity:
    @pytest.fixture(scope="class")
    def serial_bytes(self):
        return _fingerprint(_sweep(executor="serial"))

    def test_thread_matches_serial(self, serial_bytes):
        assert _fingerprint(_sweep(executor="thread",
                                   workers=2)) == serial_bytes

    def test_process_matches_serial(self, serial_bytes):
        assert _fingerprint(_sweep(executor="process",
                                   workers=2)) == serial_bytes

    def test_spawned_process_matches_serial(self, serial_bytes):
        # spawn children start from a fresh interpreter: this is the
        # strictest test of the picklable-outcome + env-forwarding
        # contract (fork inherits everything for free, spawn does not).
        assert _fingerprint(_sweep(executor="process", workers=2,
                                   start_method="spawn")) == serial_bytes

    def test_auto_workers_matches_serial(self, serial_bytes):
        assert _fingerprint(_sweep(workers="auto")) == serial_bytes


class TestExecutorSelection:
    def test_workers_auto_means_cpu_count(self):
        expected = min(os.cpu_count() or 1, 4)
        assert _resolve_workers("auto", 4) == expected

    def test_explicit_arg_beats_env(self, monkeypatch):
        monkeypatch.setenv(SWEEP_EXECUTOR_ENV, "thread")
        assert _resolve_executor("process", workers=2) == "process"

    def test_env_beats_default(self, monkeypatch):
        monkeypatch.setenv(SWEEP_EXECUTOR_ENV, "thread")
        assert _resolve_executor(None, workers=2) == "thread"

    def test_default_is_process_when_parallel(self, monkeypatch):
        monkeypatch.delenv(SWEEP_EXECUTOR_ENV, raising=False)
        assert _resolve_executor(None, workers=2) == "process"
        assert _resolve_executor(None, workers=1) == "serial"

    def test_unknown_executor_raises(self):
        with pytest.raises(ValueError, match="unknown sweep executor"):
            _resolve_executor("greenlet", workers=2)

    def test_env_knob_drives_run_sweep(self, monkeypatch):
        monkeypatch.setenv(SWEEP_EXECUTOR_ENV, "nonsense")
        with pytest.raises(ValueError):
            _sweep(workers=2)


class TestEnvForwarding:
    def test_forwarded_set_covers_telemetry_knobs(self):
        assert "FLUX_METRICS" in harness.FORWARDED_ENV
        assert "FLUX_EVENTS" in harness.FORWARDED_ENV
        assert "FLUX_EVENTS_CAP" in harness.FORWARDED_ENV
        assert "FLUX_TIMELINE" in harness.FORWARDED_ENV

    def test_pair_worker_applies_env(self, monkeypatch):
        monkeypatch.setenv("FLUX_EVENTS", "stale")
        home, guest = PAIRS[0]
        outcome = harness._pair_worker(
            home, guest, [APPS[0]], 0, False,
            {"FLUX_EVENTS": "0"})
        assert os.environ["FLUX_EVENTS"] == "0"
        assert outcome.events == []     # knob took effect pre-simulation

    def test_pair_worker_unsets_absent_env(self, monkeypatch):
        monkeypatch.setenv("FLUX_EVENTS", "0")
        home, guest = PAIRS[0]
        outcome = harness._pair_worker(
            home, guest, [APPS[0]], 0, False, {"FLUX_EVENTS": None})
        assert "FLUX_EVENTS" not in os.environ
        assert outcome.events            # default: events on


class TestSweepCacheLRU:
    def test_cache_is_bounded(self):
        clear_sweep_cache()
        apps = [app_by_title("ZEDGE")]
        for seed in range(harness._SWEEP_CACHE_MAX + 4):
            run_sweep(apps=apps, pairs=[PAIRS[0]], seed=seed)
        assert len(harness._SWEEP_CACHE) == harness._SWEEP_CACHE_MAX

    def test_eviction_is_least_recently_used(self):
        clear_sweep_cache()
        apps = [app_by_title("ZEDGE")]
        first = run_sweep(apps=apps, pairs=[PAIRS[0]], seed=0)
        for seed in range(1, harness._SWEEP_CACHE_MAX):
            run_sweep(apps=apps, pairs=[PAIRS[0]], seed=seed)
        # Touch seed 0 so it is the most recently used, then overflow.
        assert run_sweep(apps=apps, pairs=[PAIRS[0]], seed=0) is first
        run_sweep(apps=apps, pairs=[PAIRS[0]],
                  seed=harness._SWEEP_CACHE_MAX)
        assert run_sweep(apps=apps, pairs=[PAIRS[0]], seed=0) is first
        # seed 1 was the LRU entry and must have been evicted.
        keys = list(harness._SWEEP_CACHE)
        assert not any(key[2] == 1 for key in keys)

    def test_clear_sweep_cache(self):
        run_sweep(apps=[app_by_title("ZEDGE")], pairs=[PAIRS[0]])
        assert harness._SWEEP_CACHE
        clear_sweep_cache()
        assert not harness._SWEEP_CACHE


class TestEmptySweepAverages:
    def test_zero_reports_average_to_zero(self):
        empty = SweepResult(pair_labels=["a to b"], app_titles=["X"],
                            reports={})
        assert empty.average_total_seconds() == 0.0
        assert empty.average_perceived_seconds() == 0.0
        assert empty.average_non_transfer_seconds() == 0.0
        assert empty.average_stage_fraction("transfer") == 0.0
