"""Event-log determinism: logging never perturbs the simulation, the
flight-recorder ring bounds memory, and parallel sweeps produce the same
per-pair event streams as serial ones."""

import pytest

from repro.android.device import EVENTS_CAP_ENV, EVENTS_ENV
from repro.android.hardware.profiles import NEXUS_4, NEXUS_7_2013
from repro.apps import app_by_title
from repro.experiments.harness import run_pair, run_sweep


APPS = [app_by_title("ZEDGE"), app_by_title("eBay")]


class TestByteIdentity:
    def test_disabling_events_changes_nothing(self, monkeypatch):
        """Emitting only reads the clock: the same seed must produce
        bit-identical migrations with logging on and off."""
        monkeypatch.setenv(EVENTS_ENV, "1")
        with_events = run_pair(NEXUS_4, NEXUS_7_2013, APPS, seed=7)
        monkeypatch.setenv(EVENTS_ENV, "0")
        without = run_pair(NEXUS_4, NEXUS_7_2013, APPS, seed=7)

        assert with_events.reports.keys() == without.reports.keys()
        for package, report in with_events.reports.items():
            other = without.reports[package]
            assert report.stages == other.stages, package
            assert report.total_seconds == other.total_seconds, package
            assert report.transferred_bytes == other.transferred_bytes
            assert report.critical_path == other.critical_path
        # Metrics are independent of the event plane.
        assert with_events.metrics == without.metrics
        # The disabled run really collected nothing...
        assert without.events == []
        # ...and the enabled run really collected the instrumented layers.
        kinds = {e["kind"] for e in with_events.events}
        assert {"binder.transact", "migration.start", "stage.end",
                "link.transfer", "cria.restore_step", "replay.invoke",
                "migration.done"} <= kinds

    def test_events_env_defaults_on(self, monkeypatch):
        monkeypatch.delenv(EVENTS_ENV, raising=False)
        outcome = run_pair(NEXUS_4, NEXUS_7_2013, APPS, seed=7)
        assert outcome.events

    def test_txn_ids_stable_across_modes(self, monkeypatch):
        """Transaction ids come from the driver's always-on counter, so
        an id seen with logging on means the same transaction as the
        same id in any other run of the same seed."""
        monkeypatch.setenv(EVENTS_ENV, "1")
        first = run_pair(NEXUS_4, NEXUS_7_2013, APPS, seed=7)
        second = run_pair(NEXUS_4, NEXUS_7_2013, APPS, seed=7)
        txns = [(e["device"], e["txn"]) for e in first.events
                if e["kind"] == "binder.transact"]
        assert txns == [(e["device"], e["txn"]) for e in second.events
                        if e["kind"] == "binder.transact"]
        # Ids are per-device monotonic (one Binder driver per device).
        for device in ("home", "guest"):
            ids = [txn for dev, txn in txns if dev == device]
            assert ids == sorted(ids)
            assert len(set(ids)) == len(ids)


class TestFlightRecorderBound:
    CAP = 8

    def test_tiny_cap_bounds_memory_and_evicts_oldest(self, monkeypatch):
        uncapped = run_pair(NEXUS_4, NEXUS_7_2013, APPS, seed=7)
        monkeypatch.setenv(EVENTS_CAP_ENV, str(self.CAP))
        capped = run_pair(NEXUS_4, NEXUS_7_2013, APPS, seed=7)

        by_device = {}
        for event in capped.events:
            by_device.setdefault(event["device"], []).append(event)
        uncapped_by_device = {}
        for event in uncapped.events:
            uncapped_by_device.setdefault(event["device"], []).append(event)

        assert set(by_device) == {"home", "guest"}
        for device, events in by_device.items():
            assert len(events) <= self.CAP
            seqs = [e["seq"] for e in events]
            # Contiguous tail: the retained window is the newest events.
            assert seqs == list(range(seqs[0], seqs[0] + len(seqs)))
            full = uncapped_by_device[device]
            assert len(full) > self.CAP, "scenario too small to evict"
            # Oldest evicted first: what remains is the uncapped tail.
            assert events == full[-len(events):]

        # Eviction is a pure memory bound: simulation and metrics agree.
        assert capped.metrics == uncapped.metrics
        for package, report in capped.reports.items():
            assert report.stages == uncapped.reports[package].stages

    def test_bad_cap_value_falls_back_to_default(self, monkeypatch):
        from repro.sim.events import DEFAULT_CAPACITY

        monkeypatch.setenv(EVENTS_CAP_ENV, "not-a-number")
        from repro.android.device import _events_capacity
        assert _events_capacity() == DEFAULT_CAPACITY
        monkeypatch.setenv(EVENTS_CAP_ENV, "0")
        assert _events_capacity() == 1


class TestParallelAggregation:
    def test_parallel_events_identical_to_serial(self):
        serial = run_sweep(use_cache=False, workers=1)
        parallel = run_sweep(use_cache=False, workers=4)
        assert serial.pair_events.keys() == parallel.pair_events.keys()
        for label, stream in serial.pair_events.items():
            assert stream == parallel.pair_events[label], label
        assert serial.merged_events() == parallel.merged_events()

    def test_merged_events_are_pair_labeled_in_pair_order(self):
        sweep = run_sweep()
        merged = sweep.merged_events()
        assert merged
        labels = [e["pair"] for e in merged]
        # Streams concatenate in pair order: labels appear in runs.
        seen = []
        for label in labels:
            if not seen or seen[-1] != label:
                seen.append(label)
        assert seen == sweep.pair_labels

    def test_pair_stream_preserves_per_device_order(self):
        sweep = run_sweep()
        for label in sweep.pair_labels:
            stream = sweep.pair_events[label]
            times = [e["t"] for e in stream]
            assert times == sorted(times), label
            for device in ("home", "guest"):
                seqs = [e["seq"] for e in stream if e["device"] == device]
                assert seqs == sorted(seqs), (label, device)

    def test_every_migration_has_lifecycle_events(self):
        sweep = run_sweep()
        for label in sweep.pair_labels:
            stream = sweep.pair_events[label]
            starts = [e for e in stream if e["kind"] == "migration.start"]
            dones = [e for e in stream if e["kind"] == "migration.done"]
            migrated = [pkg for (pair, pkg) in sweep.reports
                        if pair == label]
            assert len(dones) == len(migrated), label
            assert len(starts) >= len(dones), label
