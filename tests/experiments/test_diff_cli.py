"""End-to-end run bundles + ``flux-sim diff``: reflexivity and attribution.

The determinism contract says a run bundle is a pure function of the
configuration, so ``diff(A, A')`` over two same-config runs must be
*empty* (exit 0) for every bundle kind and executor — and a perturbed
run (link fault, halved link rate) must exit 2 with the top suspect
naming the stage or session that actually regressed.
"""

import pytest

from repro.cli import (
    _boot_pair,
    _merged_events,
    _migrate_metrics_document,
    main,
)
from repro.sim.bundle import RunBundle, collect_fingerprint, write_bundle
from repro.sim.diffing import (
    EXIT_IDENTICAL,
    EXIT_REGRESSED,
    diff_bundles,
)

BIBLE = "com.sirma.mobile.bible.android"
WITCH = "com.king.bubblewitch"


def _diff(a, b, **kwargs):
    return diff_bundles(RunBundle.load(a), RunBundle.load(b), **kwargs)


class TestReflexivity:
    def test_migrate_bundles_diff_empty(self, capsys, tmp_path):
        a, b = str(tmp_path / "a"), str(tmp_path / "b")
        assert main(["migrate", "--app", "bible", "--bundle-out", a]) == 0
        assert main(["migrate", "--app", "bible", "--bundle-out", b]) == 0
        assert main(["diff", a, b]) == EXIT_IDENTICAL
        out = capsys.readouterr().out
        assert "IDENTICAL" in out and "empty diff" in out

    def test_scenario_bundles_diff_empty(self, capsys, tmp_path):
        a, b = str(tmp_path / "a"), str(tmp_path / "b.tar.gz")
        assert main(["scenario", "--bundle-out", a]) == 0
        assert main(["scenario", "--bundle-out", b]) == 0
        assert main(["diff", a, b]) == EXIT_IDENTICAL

    def test_sweep_bundles_serial_vs_process_diff_empty(
            self, capsys, tmp_path, monkeypatch):
        # cmd_sweep exports the executor knobs into os.environ for the
        # figure modules.  delenv(raising=False) on an absent variable
        # records nothing to undo, so setenv first: teardown then
        # restores the original absence even after main() sets them.
        for knob in ("FLUX_SWEEP_WORKERS", "FLUX_SWEEP_EXECUTOR"):
            monkeypatch.setenv(knob, "")
            monkeypatch.delenv(knob)
        serial = str(tmp_path / "serial")
        process = str(tmp_path / "process.tar.gz")
        assert main(["sweep", "--bundle-out", serial]) == 0
        assert main(["sweep", "--workers", "2", "--executor", "process",
                     "--bundle-out", process]) == 0
        assert main(["diff", serial, process]) == EXIT_IDENTICAL
        document = _diff(serial, process)
        # The planes are byte-equal; only the declared executor differs.
        assert document["verdict"] == "identical"
        differing = set(document["fingerprint"]["differences"])
        assert "executor" in differing
        assert differing <= {"executor", "workers", "env"}


def _api_migrate_bundle(path, link_factory=None):
    """A migrate bundle produced through the service API (so tests can
    hand the pipeline a perturbed link the CLI has no flag for)."""
    from repro.apps.catalog import app_by_package
    home, guest = _boot_pair("nexus4", "nexus7_2013", 0)
    spec = app_by_package(BIBLE)
    spec.install_and_launch(home)
    home.pairing_service.pair(guest)
    link = link_factory(home, guest) if link_factory else None
    report = home.migration_service.migrate(guest, BIBLE, link=link)
    from repro.sim.timeline import merge_timelines
    write_bundle(
        str(path),
        kind="migrate",
        fingerprint=collect_fingerprint("migrate", workload=[BIBLE],
                                        pairs=["nexus4->nexus7_2013"],
                                        seed=0),
        metrics=_migrate_metrics_document(home, guest, report),
        events=_merged_events(home, guest),
        timeline=merge_timelines(home.timeline.export(),
                                 guest.timeline.export()))
    return str(path)


def _halved_link(home, guest):
    from repro.android.net.link import Link, link_between
    base = link_between(home.profile, guest.profile, home.rng_factory)
    return Link(bandwidth_mbps=base.bandwidth_mbps / 2, name=base.name,
                rng_factory=home.rng_factory)


class TestAttribution:
    def test_link_fault_flips_the_outcome(self, capsys, tmp_path):
        clean, faulted = str(tmp_path / "clean"), str(tmp_path / "faulted")
        assert main(["migrate", "--app", "bible",
                     "--bundle-out", clean]) == 0
        assert main(["migrate", "--app", "bible",
                     "--drop-link-after-bytes", "100000",
                     "--bundle-out", faulted]) == 1
        assert main(["diff", clean, faulted]) == EXIT_REGRESSED
        out = capsys.readouterr().out
        assert "REGRESSED" in out

        document = _diff(clean, faulted)
        top = document["suspects"][0]
        assert top["kind"] == "outcome"
        assert top["subject"] == BIBLE
        assert top["stage"] == "transfer"
        assert "migrated -> faulted in stage transfer" in top["detail"]

    def test_halved_link_rate_blames_the_transfer_stage(self, tmp_path):
        baseline = _api_migrate_bundle(tmp_path / "baseline")
        halved = _api_migrate_bundle(tmp_path / "halved",
                                     link_factory=_halved_link)
        document = _diff(baseline, halved)
        assert document["verdict"] == "regressed"
        from repro.sim.diffing import exit_code
        assert exit_code(document) == EXIT_REGRESSED
        top = document["suspects"][0]
        assert top["kind"] == "stage"
        assert top["stage"] == "transfer"
        assert top["delta_s"] > 0

    def test_api_bundle_reflexivity(self, tmp_path):
        a = _api_migrate_bundle(tmp_path / "a")
        b = _api_migrate_bundle(tmp_path / "b")
        assert _diff(a, b)["verdict"] == "identical"


class TestSuspectStability:
    SESSIONS = [f"home:guest:{WITCH}@0", f"home:guest:{BIBLE}@1"]

    def _scenario(self, path, seed, sessions):
        args = ["scenario", "--seed", str(seed), "--bundle-out", str(path)]
        for session in sessions:
            args += ["--migrate", session]
        assert main(args) == 0
        return str(path)

    def test_suspects_stable_across_submission_order(self, capsys,
                                                     tmp_path):
        base = self._scenario(tmp_path / "base", 0, self.SESSIONS)
        forward = self._scenario(tmp_path / "fwd", 1, self.SESSIONS)
        backward = self._scenario(tmp_path / "rev", 1,
                                  list(reversed(self.SESSIONS)))
        # Submission order is not configuration: the two seed-1 bundles
        # are the same run, so each diff against the baseline ranks the
        # same suspects in the same order.
        assert _diff(forward, backward)["verdict"] == "identical"
        suspects_fwd = _diff(base, forward)["suspects"]
        suspects_rev = _diff(base, backward)["suspects"]
        assert suspects_fwd == suspects_rev
        assert suspects_fwd  # the seed perturbation did move something


class TestDiffCli:
    def test_json_out_writes_the_document(self, capsys, tmp_path):
        a, b = str(tmp_path / "a"), str(tmp_path / "b")
        assert main(["scenario", "--bundle-out", a]) == 0
        assert main(["scenario", "--seed", "1", "--bundle-out", b]) == 0
        out_path = tmp_path / "diff.json"
        code = main(["diff", a, b, "--json-out", str(out_path)])
        assert code == EXIT_REGRESSED
        import json
        document = json.loads(out_path.read_text())
        assert document["verdict"] == "regressed"
        assert document["suspects"]
        assert document["fingerprint"]["differences"]["seed"] == {
            "a": 0, "b": 1}

    def test_kind_mismatch_is_an_error(self, capsys, tmp_path):
        migrate = str(tmp_path / "m")
        scenario = str(tmp_path / "s")
        assert main(["migrate", "--app", "bible",
                     "--bundle-out", migrate]) == 0
        assert main(["scenario", "--bundle-out", scenario]) == 0
        with pytest.raises(SystemExit, match="cannot diff"):
            main(["diff", migrate, scenario])


class TestBundleConsumers:
    def test_explain_reads_a_bundle(self, capsys, tmp_path):
        bundle = str(tmp_path / "run")
        assert main(["scenario", "--bundle-out", bundle]) == 0
        capsys.readouterr()
        assert main(["explain", bundle]) == 0
        out = capsys.readouterr().out
        assert "post-mortem" in out
        assert "critical path" in out

    def test_explain_why_reads_a_bundle(self, capsys, tmp_path):
        bundle = str(tmp_path / "run")
        assert main(["scenario", "--bundle-out", bundle]) == 0
        capsys.readouterr()
        assert main(["explain", bundle,
                     "--why", f"home/{BIBLE}@1"]) == 0
        out = capsys.readouterr().out
        assert "queued behind" in out
