"""NotificationManagerService and AlarmManagerService behaviour."""

import pytest

from repro.android.app.intent import Intent, PendingIntent
from repro.android.app.notification import Notification
from repro.android.services.base import ServiceError
from tests.conftest import DEMO_PACKAGE, launch_demo


class TestNotificationService:
    def test_notify_and_cancel(self, device, demo_thread):
        nm = demo_thread.context.get_system_service("notification")
        nm.notify(1, Notification("a"))
        nm.notify(2, Notification("b"))
        service = device.service("notification")
        assert service.getActiveNotificationCount(DEMO_PACKAGE) == 2
        nm.cancel(1)
        snapshot = service.snapshot(DEMO_PACKAGE)
        assert list(snapshot["active"]) == [2]

    def test_cancel_all(self, device, demo_thread):
        nm = demo_thread.context.get_system_service("notification")
        for i in range(3):
            nm.notify(i, Notification(f"n{i}"))
        nm.cancel_all()
        assert device.service("notification").snapshot(
            DEMO_PACKAGE)["active"] == {}

    def test_disabled_notifications_rejected(self, device, demo_thread):
        nm = demo_thread.context.get_system_service("notification")
        nm.setNotificationsEnabled(False)
        with pytest.raises(ServiceError):
            nm.notify(1, Notification("blocked"))

    def test_toasts(self, device, demo_thread):
        nm = demo_thread.context.get_system_service("notification")
        nm.enqueueToast("hello", "short")
        nm.cancelToast("hello")
        state = device.service("notification").app_state(DEMO_PACKAGE)
        assert state["toasts"] == []


class TestAlarmService:
    def test_alarm_fires_and_broadcasts_to_app(self, device, clock,
                                               demo_thread):
        received = []
        demo_thread.register_receiver(received.append, ["com.demo.WAKE"])
        alarm = demo_thread.context.get_system_service("alarm")
        pi = PendingIntent(DEMO_PACKAGE, Intent("com.demo.WAKE"))
        alarm.set(alarm.RTC_WAKEUP, clock.now + 5.0, pi)
        clock.advance(4.0)
        assert received == []
        clock.advance(2.0)
        assert len(received) == 1
        assert received[0].action == "com.demo.WAKE"
        # Fired alarms leave the service state.
        assert device.service("alarm").active_alarms(DEMO_PACKAGE) == []

    def test_replacing_alarm_cancels_old_deadline(self, device, clock,
                                                  demo_thread):
        received = []
        demo_thread.register_receiver(received.append, ["com.demo.WAKE"])
        alarm = demo_thread.context.get_system_service("alarm")
        pi = PendingIntent(DEMO_PACKAGE, Intent("com.demo.WAKE"))
        alarm.set(alarm.RTC, clock.now + 2.0, pi)
        alarm.set(alarm.RTC, clock.now + 10.0, pi)
        clock.advance(5.0)
        assert received == []    # original deadline must not fire
        clock.advance(6.0)
        assert len(received) == 1

    def test_remove_cancels(self, device, clock, demo_thread):
        received = []
        demo_thread.register_receiver(received.append, ["com.demo.WAKE"])
        alarm = demo_thread.context.get_system_service("alarm")
        pi = PendingIntent(DEMO_PACKAGE, Intent("com.demo.WAKE"))
        alarm.set(alarm.RTC, clock.now + 2.0, pi)
        alarm.cancel(pi)
        clock.advance(5.0)
        assert received == []

    def test_repeating_alarm_reschedules(self, device, clock, demo_thread):
        received = []
        demo_thread.register_receiver(received.append, ["com.demo.TICK"])
        alarm = demo_thread.context.get_system_service("alarm")
        pi = PendingIntent(DEMO_PACKAGE, Intent("com.demo.TICK"))
        alarm.set_repeating(alarm.RTC, clock.now + 1.0, 1.0, pi)
        clock.advance(3.5)
        assert len(received) == 3
        assert len(device.service("alarm").active_alarms(DEMO_PACKAGE)) == 1

    def test_bad_interval_rejected(self, device, demo_thread):
        alarm = demo_thread.context.get_system_service("alarm")
        pi = PendingIntent(DEMO_PACKAGE, Intent("x"))
        with pytest.raises(ServiceError):
            alarm.set_repeating(alarm.RTC, 1.0, 0.0, pi)

    def test_set_time_needs_permission(self, device, demo_thread):
        alarm = demo_thread.context.get_system_service("alarm")
        with pytest.raises(ServiceError):
            alarm.setTime(12345.0)

    def test_pending_intent_equality_drives_replacement(self):
        a1 = PendingIntent("pkg", Intent("ACT"), request_code=1)
        a2 = PendingIntent("pkg", Intent("ACT"), request_code=1)
        b = PendingIntent("pkg", Intent("ACT"), request_code=2)
        assert a1 == a2
        assert hash(a1) == hash(a2)
        assert a1 != b
