"""SensorService: connections, event channels, delivery."""

import pytest

from repro.android.kernel.files import UnixSocket
from repro.android.services.base import ServiceError
from tests.conftest import DEMO_PACKAGE


@pytest.fixture
def sensors(demo_thread):
    return demo_thread.context.get_system_service("sensor")


class TestSensorList:
    def test_profile_sensors_exposed(self, sensors):
        types = {s.sensor_type for s in sensors.get_sensor_list()}
        assert "accelerometer" in types
        assert "gyroscope" in types

    def test_default_sensor_lookup(self, sensors):
        sensor = sensors.default_sensor("accelerometer")
        assert sensor is not None
        assert sensors.default_sensor("barometer") is None


class TestConnections:
    def test_register_creates_connection_and_channel(self, device,
                                                     demo_thread, sensors):
        accel = sensors.default_sensor("accelerometer")
        sensors.register_listener(lambda e: None, accel.handle)
        assert sensors.channel_fd is not None
        sock = demo_thread.process.fds.get(sensors.channel_fd)
        assert isinstance(sock, UnixSocket)
        snapshot = device.service("sensor").snapshot(DEMO_PACKAGE)
        assert snapshot["connections"] == 1
        assert snapshot["enabled"] == [(accel.handle, 10)]  # default rate

    def test_event_delivery_through_socket(self, device, demo_thread,
                                           sensors):
        accel = sensors.default_sensor("accelerometer")
        events = []
        sensors.register_listener(events.append, accel.handle)
        delivered = device.service("sensor").inject_event(accel.handle,
                                                          b"x:1.0")
        assert delivered == 1
        assert sensors.poll_events() == [b"x:1.0"]
        assert events == [b"x:1.0"]

    def test_disabled_sensor_gets_no_events(self, device, sensors):
        accel = sensors.default_sensor("accelerometer")
        sensors.register_listener(lambda e: None, accel.handle)
        sensors.unregister_listener(accel.handle)
        assert device.service("sensor").inject_event(accel.handle, b"e") == 0

    def test_rate_clamped_to_sensor_max(self, device, sensors):
        light = sensors.default_sensor("light")     # max 10 Hz
        sensors.register_listener(lambda e: None, light.handle,
                                  sampling_rate=500)
        snapshot = device.service("sensor").snapshot(DEMO_PACKAGE)
        assert (light.handle, 10) in snapshot["enabled"]

    def test_unknown_sensor_handle_rejected(self, device, demo_thread,
                                            sensors):
        with pytest.raises(ServiceError):
            sensors.register_listener(lambda e: None, 999)

    def test_connection_calls_are_recorded(self, device, demo_thread,
                                           sensors):
        accel = sensors.default_sensor("accelerometer")
        sensors.register_listener(lambda e: None, accel.handle)
        log = device.recorder.extract_app_log(DEMO_PACKAGE)
        methods = [(e.interface, e.method) for e in log]
        assert ("ISensorService", "createSensorEventConnection") in methods
        assert ("ISensorEventConnection", "getSensorChannel") in methods
        assert ("ISensorEventConnection", "enableSensor") in methods

    def test_enable_disable_annihilate_in_log(self, device, demo_thread,
                                              sensors):
        accel = sensors.default_sensor("accelerometer")
        sensors.register_listener(lambda e: None, accel.handle)
        sensors.unregister_listener(accel.handle)
        log = device.recorder.extract_app_log(DEMO_PACKAGE)
        methods = [e.method for e in log]
        assert "enableSensor" not in methods
        assert "disableSensor" not in methods

    def test_destroyed_connection_rejects_calls(self, device, demo_thread,
                                                sensors):
        accel = sensors.default_sensor("accelerometer")
        sensors.register_listener(lambda e: None, accel.handle)
        connection = device.service("sensor").connections[-1]
        connection.destroy(demo_thread.process)
        with pytest.raises(ServiceError):
            connection.enableSensor(demo_thread.process, accel.handle, 5)
