"""WindowManagerService and PackageManagerService."""

import pytest

from repro.android.services.base import ServiceError
from repro.android.services.package_manager import PackageInfo
from repro.sim import units
from tests.conftest import DEMO_PACKAGE, launch_demo


class TestWindowManager:
    def test_windows_sized_to_device_screen(self, device, demo_thread):
        (window,) = device.window_service.windows_of(DEMO_PACKAGE)
        assert window.screen == device.profile.screen
        assert window.has_surface

    def test_live_surface_count(self, device, demo_thread, clock):
        assert device.window_service.live_surface_count(DEMO_PACKAGE) == 1
        device.activity_service.background_app(DEMO_PACKAGE)
        clock.advance(1.0)
        assert device.window_service.live_surface_count(DEMO_PACKAGE) == 0

    def test_remove_window(self, device, demo_thread):
        (window,) = device.window_service.windows_of(DEMO_PACKAGE)
        device.window_service.remove_window(window)
        assert device.window_service.windows_of(DEMO_PACKAGE) == []
        assert not window.visible

    def test_windows_isolated_by_package(self, device, demo_thread):
        launch_demo(device, package="com.other")
        assert len(device.window_service.windows_of(DEMO_PACKAGE)) == 1
        assert len(device.window_service.windows_of("com.other")) == 1


class TestPackageManager:
    def _info(self, version=1, **kwargs):
        defaults = dict(package="com.pkg", version_code=version,
                        api_level=19, apk_size=units.mb(1))
        defaults.update(kwargs)
        return PackageInfo(**defaults)

    def test_install_and_query(self, device):
        device.package_service.install(self._info())
        assert device.package_service.is_installed("com.pkg")
        assert not device.package_service.is_pseudo("com.pkg")

    def test_upgrade_allowed_downgrade_refused(self, device):
        device.package_service.install(self._info(version=5))
        device.package_service.install(self._info(version=6))
        with pytest.raises(ServiceError):
            device.package_service.install(self._info(version=4))

    def test_pseudo_install_then_native_upgrade(self, device):
        device.package_service.pseudo_install(self._info(version=3))
        assert device.package_service.is_pseudo("com.pkg")
        # A real install replaces the wrapper.
        device.package_service.install(self._info(version=3))
        assert not device.package_service.is_pseudo("com.pkg")

    def test_pseudo_over_native_refused(self, device):
        device.package_service.install(self._info())
        with pytest.raises(ServiceError):
            device.package_service.pseudo_install(self._info())

    def test_uninstall(self, device):
        device.package_service.install(self._info())
        device.package_service.uninstall("com.pkg")
        assert not device.package_service.is_installed("com.pkg")
        with pytest.raises(ServiceError):
            device.package_service.uninstall("com.pkg")

    def test_permissions(self, device):
        device.package_service.install(
            self._info(permissions=("CAMERA",)))
        assert device.package_service.has_permission("com.pkg", "CAMERA")
        assert not device.package_service.has_permission("com.pkg", "GPS")

    def test_listing_excludes_pseudo_when_asked(self, device):
        device.package_service.install(self._info())
        device.package_service.pseudo_install(
            self._info(package="com.wrap"))
        everything = device.package_service.installed_packages()
        native_only = device.package_service.installed_packages(
            include_pseudo=False)
        assert len(everything) == 2
        assert [p.package for p in native_only] == ["com.pkg"]

    def test_total_apk_bytes(self, device):
        device.package_service.install(self._info(apk_size=units.mb(3)))
        device.package_service.install(
            self._info(package="com.two", apk_size=units.mb(5)))
        assert device.package_service.total_apk_bytes() == units.mb(8)


class TestBenchmarkSuiteUnits:
    """The Quadrant/SunSpider workloads themselves."""

    def test_scores_scale_with_cpu_factor(self):
        from repro.benchmarksuite import run_device_suite
        from repro.android.hardware.profiles import NEXUS_7_2012, NEXUS_7_2013
        slow = run_device_suite(NEXUS_7_2012, flux_enabled=False)
        fast = run_device_suite(NEXUS_7_2013, flux_enabled=False)
        for name in slow:
            assert fast[name] > slow[name]

    def test_results_deterministic(self):
        from repro.benchmarksuite import run_device_suite
        from repro.android.hardware.profiles import NEXUS_4
        a = run_device_suite(NEXUS_4, flux_enabled=True)
        b = run_device_suite(NEXUS_4, flux_enabled=True)
        assert a == b

    def test_flux_score_never_exceeds_aosp(self):
        from repro.benchmarksuite import run_fig16
        from repro.android.hardware.profiles import NEXUS_4
        for score in run_fig16([NEXUS_4]):
            assert score.flux_score <= score.aosp_score
