"""Power, Vibrator, Clipboard, Camera and the small services."""

import pytest

from repro.android.services.base import ServiceError
from tests.conftest import DEMO_PACKAGE, launch_demo


class TestPower:
    def test_wakelock_reaches_kernel(self, device, demo_thread):
        power = demo_thread.context.get_system_service("power")
        lock = power.new_wake_lock(power.PARTIAL_WAKE_LOCK, "sync")
        lock.acquire()
        assert not device.kernel.wakelocks.can_sleep
        lock.release()
        assert device.kernel.wakelocks.can_sleep

    def test_release_unheld_rejected(self, device, demo_thread):
        power = demo_thread.context.get_system_service("power")
        with pytest.raises(ServiceError):
            power.releaseWakeLock("ghost")

    def test_release_all_for_package(self, device, demo_thread):
        power = demo_thread.context.get_system_service("power")
        power.new_wake_lock(1, "a").acquire()
        power.new_wake_lock(1, "b").acquire()
        assert device.service("power").release_all_for(DEMO_PACKAGE) == 2
        assert device.kernel.wakelocks.can_sleep

    def test_screen_and_brightness(self, device, demo_thread):
        power = demo_thread.context.get_system_service("power")
        power.goToSleep(0.0)
        assert not power.isScreenOn()
        power.wakeUp(0.0)
        assert power.isScreenOn()
        power.setScreenBrightness(400)
        assert power.getScreenBrightness() == 255


class TestVibrator:
    def test_vibration_expires_with_time(self, device, clock, demo_thread):
        vibrator = demo_thread.context.get_system_service("vibrator")
        vibrator.vibrate(500)
        service = device.service("vibrator")
        assert service.is_vibrating()
        clock.advance(0.6)
        assert not service.is_vibrating()

    def test_cancel_stops_immediately(self, device, demo_thread):
        vibrator = demo_thread.context.get_system_service("vibrator")
        vibrator.vibrate(10_000)
        vibrator.cancel()
        assert not device.service("vibrator").is_vibrating()

    def test_vibrate_cancel_annihilate_in_log(self, device, demo_thread):
        vibrator = demo_thread.context.get_system_service("vibrator")
        vibrator.vibrate(10_000)
        vibrator.cancel()
        entries = [e for e in device.recorder.extract_app_log(DEMO_PACKAGE)
                   if e.interface == "IVibratorService"]
        # cancel dropped the vibrate and was itself suppressed.
        assert entries == []


class TestClipboard:
    def test_clip_round_trip(self, device, demo_thread):
        clipboard = demo_thread.context.get_system_service("clipboard")
        assert clipboard.get_text() is None
        clipboard.set_text("copied")
        assert clipboard.get_text() == "copied"
        assert clipboard.hasPrimaryClip()
        assert clipboard.hasClipboardText()

    def test_listeners_tracked_per_app(self, device, demo_thread):
        clipboard = demo_thread.context.get_system_service("clipboard")
        clipboard.addPrimaryClipChangedListener("l1")
        assert device.service("clipboard").snapshot(
            DEMO_PACKAGE)["listeners"] == ["l1"]


class TestCamera:
    def test_exclusive_connection(self, device, demo_thread):
        camera = demo_thread.context.get_system_service("camera")
        camera.open(0)
        other = launch_demo(device, package="com.other")
        other_camera = other.context.get_system_service("camera")
        with pytest.raises(ServiceError):
            other_camera.open(0)
        camera.close(0)
        other_camera.open(0)    # now free

    def test_torch_mode(self, device, demo_thread):
        camera = demo_thread.context.get_system_service("camera")
        camera.setTorchMode(0, True)
        assert device.service("camera").snapshot(DEMO_PACKAGE)["torch"][0]

    def test_unknown_camera_rejected(self, device, demo_thread):
        camera = demo_thread.context.get_system_service("camera")
        with pytest.raises(ServiceError):
            camera.open(9)


class TestSmallServices:
    def test_input_method_show_hide_annihilates(self, device, demo_thread):
        ime = demo_thread.context.get_system_service("input_method")
        ime.show_soft_input()
        assert device.service("input_method").soft_input_shown
        ime.hide_soft_input()
        entries = [e for e in device.recorder.extract_app_log(DEMO_PACKAGE)
                   if e.interface == "IInputMethodManagerService"]
        assert entries == []

    def test_keyguard_state(self, device, demo_thread):
        keyguard = demo_thread.context.get_system_service("keyguard")
        keyguard.doKeyguardTimeout()
        assert keyguard.isKeyguardLocked()
        keyguard.dismissKeyguard()
        assert not keyguard.isKeyguardLocked()

    def test_ui_mode_car_toggle(self, device, demo_thread):
        ui_mode = demo_thread.context.get_system_service("ui_mode")
        ui_mode.enableCarMode(0)
        assert ui_mode.getCurrentModeType() == 3
        ui_mode.disableCarMode(0)
        assert ui_mode.getCurrentModeType() == 1

    def test_bluetooth_undecorated_calls_not_recorded(self, device,
                                                      demo_thread):
        sm = device.service_manager
        remote = sm.get_service(demo_thread.process, "bluetooth")
        proxy = device.registry.get("IBluetoothService").new_proxy(
            remote, demo_thread.recorder)
        proxy.enable()
        proxy.setName("flux-device")
        entries = [e for e in device.recorder.extract_app_log(DEMO_PACKAGE)
                   if e.interface == "IBluetoothService"]
        assert entries == []    # Table 2: Bluetooth is undecorated (TBD)
