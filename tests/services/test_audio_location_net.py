"""AudioService, LocationManagerService, Wifi/Connectivity services."""

import pytest

from repro.android.services.audio import RINGER_SILENT, STREAM_MUSIC
from repro.android.services.base import ServiceError
from repro.android.services.connectivity_net import WifiConfiguration
from tests.conftest import DEMO_PACKAGE


class TestAudio:
    def test_volume_clamped_to_stream_max(self, device, demo_thread):
        audio = demo_thread.context.get_system_service("audio")
        maximum = audio.getStreamMaxVolume(STREAM_MUSIC)
        audio.set_stream_volume(STREAM_MUSIC, maximum + 50)
        assert audio.get_stream_volume(STREAM_MUSIC) == maximum
        audio.set_stream_volume(STREAM_MUSIC, -3)
        assert audio.get_stream_volume(STREAM_MUSIC) == 0

    def test_adjust_is_relative(self, device, demo_thread):
        audio = demo_thread.context.get_system_service("audio")
        audio.set_stream_volume(STREAM_MUSIC, 5)
        audio.adjustStreamVolume(STREAM_MUSIC, 2, 0)
        assert audio.get_stream_volume(STREAM_MUSIC) == 7

    def test_focus_stack(self, device, demo_thread):
        audio = demo_thread.context.get_system_service("audio")
        audio.request_audio_focus("client-a")
        audio.request_audio_focus("client-b")
        service = device.service("audio")
        assert service.focus_holder() == "client-b"
        audio.abandon_audio_focus("client-b")
        assert service.focus_holder() == "client-a"

    def test_bad_stream_rejected(self, device, demo_thread):
        audio = demo_thread.context.get_system_service("audio")
        with pytest.raises(ServiceError):
            audio.get_stream_volume(99)

    def test_ringer_mode_validation(self, device, demo_thread):
        audio = demo_thread.context.get_system_service("audio")
        audio.setRingerMode(RINGER_SILENT)
        assert audio.getRingerMode() == RINGER_SILENT
        with pytest.raises(ServiceError):
            audio.setRingerMode(7)

    def test_volume_setter_log_is_last_write_wins(self, device, demo_thread):
        audio = demo_thread.context.get_system_service("audio")
        for index in (3, 6, 9):
            audio.set_stream_volume(STREAM_MUSIC, index)
        entries = [e for e in device.recorder.extract_app_log(DEMO_PACKAGE)
                   if e.method == "setStreamVolume"]
        assert len(entries) == 1
        assert entries[0].args["index"] == 9


class TestLocation:
    def test_request_and_remove_updates(self, device, demo_thread):
        location = demo_thread.context.get_system_service("location")
        location.request_updates("gps", "listener-1")
        snapshot = device.service("location").snapshot(DEMO_PACKAGE)
        assert snapshot["requests"] == [("listener-1", "gps")]
        location.remove_updates("listener-1")
        assert device.service("location").snapshot(
            DEMO_PACKAGE)["requests"] == []

    def test_last_known_location(self, device, demo_thread):
        service = device.service("location")
        service.report_fix("gps", 40.7, -74.0)
        location = demo_thread.context.get_system_service("location")
        fix = location.getLastKnownLocation("gps")
        assert (fix.latitude, fix.longitude) == (40.7, -74.0)

    def test_unknown_provider_rejected(self, device, demo_thread):
        location = demo_thread.context.get_system_service("location")
        with pytest.raises(ServiceError):
            location.request_updates("teleport", "x")

    def test_best_provider_prefers_gps(self, device, demo_thread):
        location = demo_thread.context.get_system_service("location")
        assert location.getBestProvider(True) == "gps"

    def test_device_without_gps(self, heterogeneous_pair):
        from tests.conftest import launch_demo
        home, _ = heterogeneous_pair    # Nexus 7 (2012): network only
        thread = launch_demo(home)
        location = thread.context.get_system_service("location")
        assert location.getProviders(True) == ["network"]
        with pytest.raises(ServiceError):
            location.addGpsStatusListener("x")


class TestWifi:
    def test_add_enable_remove_network(self, device, demo_thread):
        wifi = demo_thread.context.get_system_service("wifi")
        net_id = wifi.addNetwork(WifiConfiguration("home-ap"))
        wifi.enableNetwork(net_id, False)
        snapshot = device.service("wifi").snapshot(DEMO_PACKAGE)
        assert snapshot["networks"] == ["home-ap"]
        wifi.removeNetwork(net_id)
        assert device.service("wifi").snapshot(DEMO_PACKAGE)["networks"] == []

    def test_lock_lifecycle(self, device, demo_thread):
        wifi = demo_thread.context.get_system_service("wifi")
        wifi.acquire_lock("stream")
        assert "stream" in device.service("wifi").snapshot(
            DEMO_PACKAGE)["locks"]
        wifi.release_lock("stream")
        with pytest.raises(ServiceError):
            wifi.release_lock("stream")

    def test_disable_wifi_disconnects(self, device, demo_thread):
        wifi = demo_thread.context.get_system_service("wifi")
        wifi.setWifiEnabled(False)
        assert wifi.getConnectionInfo().ssid is None
        assert wifi.getScanResults() == []

    def test_network_add_remove_replay_correct(self, device, demo_thread):
        """addNetwork's id is a *return value*, so removeNetwork's @if
        cannot annihilate it by argument match; both calls stay in the
        log and replay remains correct (add then remove).  Repeated
        removes of the same id do collapse."""
        wifi = demo_thread.context.get_system_service("wifi")
        net_id = wifi.addNetwork(WifiConfiguration("temp"))
        wifi.removeNetwork(net_id)
        methods = [e.method for e in
                   device.recorder.extract_app_log(DEMO_PACKAGE)
                   if e.interface == "IWifiService"]
        assert methods == ["addNetwork", "removeNetwork"]

    def test_enable_disable_annihilate_in_log(self, device, demo_thread):
        wifi = demo_thread.context.get_system_service("wifi")
        net_id = wifi.addNetwork(WifiConfiguration("temp"))
        wifi.enableNetwork(net_id, False)
        wifi.disableNetwork(net_id)
        methods = [e.method for e in
                   device.recorder.extract_app_log(DEMO_PACKAGE)
                   if e.interface == "IWifiService"]
        # disableNetwork annihilated the matching enableNetwork and was
        # itself suppressed; only the add remains.
        assert methods == ["addNetwork"]


class TestConnectivity:
    def test_airplane_mode_breaks_connectivity(self, device, demo_thread):
        connectivity = demo_thread.context.get_system_service("connectivity")
        assert connectivity.is_connected()
        connectivity.setAirplaneMode(True)
        assert not connectivity.is_connected()
        assert connectivity.getActiveNetworkInfo() is None

    def test_interrupt_broadcasts_loss_then_reconnect(self, device,
                                                      demo_thread):
        received = []
        demo_thread.register_receiver(
            received.append, ["android.net.conn.CONNECTIVITY_CHANGE"])
        device.service("connectivity").simulate_connectivity_interrupt()
        assert [i.get_extra("connected") for i in received] == [False, True]

    def test_callback_registration_snapshot(self, device, demo_thread):
        connectivity = demo_thread.context.get_system_service("connectivity")
        connectivity.registerNetworkCallback("cb-1")
        assert device.service("connectivity").snapshot(
            DEMO_PACKAGE)["callbacks"] == ["cb-1"]
        connectivity.unregisterNetworkCallback("cb-1")
        assert device.service("connectivity").snapshot(
            DEMO_PACKAGE)["callbacks"] == []
