"""Sticky broadcasts and their role across migration."""

import pytest

from repro.android.app.intent import (
    ACTION_CONNECTIVITY_CHANGE,
    ACTION_WIFI_STATE_CHANGED,
    Intent,
)
from tests.conftest import DEMO_PACKAGE, launch_demo


class TestStickySemantics:
    def test_registration_returns_last_sticky(self, device, demo_thread):
        ams = device.activity_service
        ams.broadcast_sticky(Intent("STATE", value=7))
        am = demo_thread.context.get_system_service("activity")
        sticky = am.registerReceiver("r-1", __import__(
            "repro.android.app.intent", fromlist=["IntentFilter"]
        ).IntentFilter(("STATE",)))
        assert sticky is not None and sticky.get_extra("value") == 7

    def test_non_sticky_not_returned(self, device, demo_thread):
        from repro.android.app.intent import IntentFilter
        device.activity_service.broadcast(Intent("PLAIN"))
        am = demo_thread.context.get_system_service("activity")
        assert am.registerReceiver("r-2", IntentFilter(("PLAIN",))) is None

    def test_latest_sticky_wins(self, device):
        ams = device.activity_service
        ams.broadcast_sticky(Intent("STATE", value=1))
        ams.broadcast_sticky(Intent("STATE", value=2))
        assert ams.sticky_intent("STATE").get_extra("value") == 2

    def test_remove_sticky(self, device, demo_thread):
        ams = device.activity_service
        ams.broadcast_sticky(Intent("STATE", value=1))
        ams.removeStickyBroadcast(demo_thread.process, "STATE")
        assert ams.sticky_intent("STATE") is None

    def test_sticky_also_delivers_live(self, device, demo_thread):
        hits = []
        demo_thread.register_receiver(hits.append, ["STATE"])
        device.activity_service.broadcast_sticky(Intent("STATE"))
        assert len(hits) == 1


class TestFrameworkStickies:
    def test_wifi_state_change_is_sticky(self, device, demo_thread):
        wifi = demo_thread.context.get_system_service("wifi")
        wifi.setWifiEnabled(False)
        sticky = device.activity_service.sticky_intent(
            ACTION_WIFI_STATE_CHANGED)
        assert sticky is not None and sticky.get_extra("state") == 1

    def test_connectivity_interrupt_leaves_connected_sticky(self, device):
        device.service("connectivity").simulate_connectivity_interrupt()
        sticky = device.activity_service.sticky_intent(
            ACTION_CONNECTIVITY_CHANGE)
        assert sticky.get_extra("connected") is True

    def test_guest_sticky_reflects_reintegration(self, device_pair):
        """After migration, the guest's sticky connectivity intent is the
        reconnect signal reintegration broadcast — so any receiver the
        app registers later immediately sees 'connected'."""
        home, guest = device_pair
        thread = launch_demo(home)
        home.pairing_service.pair(guest)
        home.migration_service.migrate(guest, DEMO_PACKAGE)
        sticky = guest.activity_service.sticky_intent(
            ACTION_CONNECTIVITY_CHANGE)
        assert sticky is not None
        assert sticky.get_extra("connected") is True
        # A post-migration registration learns the state instantly.
        hits = []
        returned = thread.register_receiver(hits.append,
                                            [ACTION_CONNECTIVITY_CHANGE])
        am = thread.context.get_system_service("activity")
        assert guest.activity_service.sticky_intent(
            ACTION_CONNECTIVITY_CHANGE).get_extra("connected") is True
