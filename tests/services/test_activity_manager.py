"""ActivityManagerService: lifecycle control, broadcasts, providers."""

import pytest

from repro.android.app.activity import ActivityState
from repro.android.app.intent import Intent
from repro.android.services.base import ServiceError
from tests.conftest import DEMO_PACKAGE, launch_demo


class TestLifecycleControl:
    def test_background_pauses_then_idler_stops(self, device, clock,
                                                demo_thread):
        activity = next(iter(demo_thread.activities.values()))
        assert activity.state is ActivityState.RESUMED
        device.activity_service.background_app(DEMO_PACKAGE)
        assert activity.state is ActivityState.PAUSED
        assert activity.window.has_surface      # not yet stopped
        clock.advance(device.activity_service.TASK_IDLE_DELAY + 0.05)
        assert activity.state is ActivityState.STOPPED
        assert not activity.window.has_surface  # surface freed on stop

    def test_foreground_recreates_surface_and_redraws(self, device, clock,
                                                      demo_thread):
        activity = next(iter(demo_thread.activities.values()))
        frames_before = activity.window.surface.frames_rendered
        device.activity_service.background_app(DEMO_PACKAGE)
        clock.advance(1.0)
        device.activity_service.foreground_app(DEMO_PACKAGE)
        assert activity.state is ActivityState.RESUMED
        assert activity.window.has_surface
        assert activity.window.surface.frames_rendered >= 1

    def test_finish_activity_walks_lifecycle_down(self, device, demo_thread):
        activity = next(iter(demo_thread.activities.values()))
        device.activity_service.finishActivity(demo_thread.process,
                                               activity.token)
        assert activity.state is ActivityState.DESTROYED
        assert activity.token not in demo_thread.activities

    def test_kill_background_processes(self, device, clock, demo_thread):
        device.activity_service.background_app(DEMO_PACKAGE)
        clock.advance(1.0)
        device.activity_service.killBackgroundProcesses(demo_thread.process,
                                                        DEMO_PACKAGE)
        assert not device.activity_service.is_running(DEMO_PACKAGE)
        assert device.kernel.processes_of_package(DEMO_PACKAGE) == []


class TestBroadcasts:
    def test_broadcast_routed_by_filter(self, device, demo_thread):
        hits = []
        demo_thread.register_receiver(hits.append, ["com.demo.PING"])
        device.activity_service.broadcast(Intent("com.demo.PING"))
        device.activity_service.broadcast(Intent("com.demo.OTHER"))
        assert [i.action for i in hits] == ["com.demo.PING"]

    def test_component_targeted_broadcast(self, device, demo_thread):
        other = launch_demo(device, package="com.other")
        mine, theirs = [], []
        demo_thread.register_receiver(mine.append, ["PING"])
        other.register_receiver(theirs.append, ["PING"])
        device.activity_service.broadcast(
            Intent("PING", component="com.other"))
        assert mine == []
        assert len(theirs) == 1

    def test_unregister_stops_delivery(self, device, demo_thread):
        hits = []
        receiver_id = demo_thread.register_receiver(hits.append, ["PING"])
        demo_thread.unregister_receiver(receiver_id)
        device.activity_service.broadcast(Intent("PING"))
        assert hits == []

    def test_register_unregister_annihilate_in_log(self, device,
                                                   demo_thread):
        receiver_id = demo_thread.register_receiver(lambda i: None, ["X"])
        demo_thread.unregister_receiver(receiver_id)
        entries = [e for e in device.recorder.extract_app_log(DEMO_PACKAGE)
                   if e.method in ("registerReceiver", "unregisterReceiver")]
        assert entries == []


class TestServicesAndProviders:
    def test_start_stop_app_service(self, device, demo_thread):
        am = demo_thread.context.get_system_service("activity")
        intent = Intent("com.demo.SYNC", service_name="sync")
        am.start_service(intent)
        assert demo_thread.app_services["sync"].running
        assert am.stop_service(intent) == 1
        assert "sync" not in demo_thread.app_services

    def test_bind_unbind_tracked(self, device, demo_thread):
        am = demo_thread.context.get_system_service("activity")
        am.bindService(Intent("svc"), "conn-1", 0)
        snapshot = device.activity_service.snapshot(DEMO_PACKAGE)
        assert snapshot["bindings"] == ["conn-1"]
        assert am.unbindService("conn-1") is True
        assert am.unbindService("conn-1") is False

    def test_content_provider_connection_tracked(self, device, demo_thread):
        provider_app = launch_demo(device, package="com.provider")
        provider_app.publish_provider("contacts")
        am = demo_thread.context.get_system_service("activity")
        holder = am.getContentProvider("contacts")
        assert holder["authority"] == "contacts"
        connections = device.activity_service.provider_connections_of(
            DEMO_PACKAGE)
        assert len(connections) == 1
        am.removeContentProvider("contacts")
        assert device.activity_service.provider_connections_of(
            DEMO_PACKAGE) == []

    def test_missing_provider_rejected(self, device, demo_thread):
        am = demo_thread.context.get_system_service("activity")
        with pytest.raises(ServiceError):
            am.getContentProvider("nothing")

    def test_running_processes_and_memory_info(self, device, demo_thread):
        am = demo_thread.context.get_system_service("activity")
        processes = am.getRunningAppProcesses()
        assert {"package": DEMO_PACKAGE,
                "pid": demo_thread.process.pid} in processes
        info = am.getMemoryInfo()
        assert info["available"] < info["total"]
