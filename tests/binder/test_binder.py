"""Binder driver: nodes, handles, transactions, CRIA state capture."""

import pytest

from repro.android.binder import (
    Binder,
    BinderDriver,
    BinderError,
    CallerAwareBinder,
    DeadObjectError,
    IBinder,
    Parcel,
    ServiceManager,
)
from repro.android.kernel import Kernel
from repro.sim import SimClock


@pytest.fixture
def kernel():
    return Kernel(SimClock())


@pytest.fixture
def driver(kernel):
    return BinderDriver(kernel)


@pytest.fixture
def system(kernel):
    return kernel.create_process("system_server", uid=1000, package="android")


@pytest.fixture
def app(kernel):
    return kernel.create_process("com.app", uid=10001, package="com.app")


class Echo(CallerAwareBinder):
    def ping(self, caller, value):
        return ("pong", caller.pid, value)


class TestReferences:
    def test_acquire_gives_sequential_handles(self, driver, system, app):
        node_a = driver.create_node(system, Echo(), "a")
        node_b = driver.create_node(system, Echo(), "b")
        assert driver.acquire_ref(app, node_a) == 1
        assert driver.acquire_ref(app, node_b) == 2

    def test_reacquire_reuses_handle_and_bumps_count(self, driver, system, app):
        node = driver.create_node(system, Echo(), "svc")
        handle = driver.acquire_ref(app, node)
        assert driver.acquire_ref(app, node) == handle
        ref = driver.state(app).refs[handle]
        assert ref.strong_count == 2
        driver.release_ref(app, handle)
        assert handle in driver.state(app).refs
        driver.release_ref(app, handle)
        assert handle not in driver.state(app).refs

    def test_handles_are_process_local(self, driver, system, kernel):
        app1 = kernel.create_process("a", package="a")
        app2 = kernel.create_process("b", package="b")
        node1 = driver.create_node(system, Echo(), "one")
        node2 = driver.create_node(system, Echo(), "two")
        driver.acquire_ref(app1, node1)
        assert driver.acquire_ref(app2, node2) == 1   # same handle number
        assert driver.resolve(app1, 1) is node1
        assert driver.resolve(app2, 1) is node2

    def test_inject_ref_pins_handle(self, driver, system, app):
        node = driver.create_node(system, Echo(), "svc")
        driver.inject_ref(app, 17, node)
        assert driver.resolve(app, 17) is node
        # Subsequent acquisitions never collide with injected handles.
        other = driver.create_node(system, Echo(), "other")
        assert driver.acquire_ref(app, other) == 18

    def test_inject_on_held_handle_rejected(self, driver, system, app):
        node = driver.create_node(system, Echo(), "svc")
        driver.inject_ref(app, 3, node)
        with pytest.raises(BinderError):
            driver.inject_ref(app, 3, node)

    def test_inject_at_handle_zero_rejected(self, driver, system, app):
        node = driver.create_node(system, Echo(), "svc")
        with pytest.raises(BinderError):
            driver.inject_ref(app, 0, node)

    def test_release_unknown_handle_rejected(self, driver, app):
        with pytest.raises(BinderError):
            driver.release_ref(app, 42)


class TestTransactions:
    def test_transact_dispatches_with_caller(self, driver, system, app):
        node = driver.create_node(system, Echo(), "echo")
        handle = driver.acquire_ref(app, node)
        result = driver.transact(app, handle, "ping",
                                 Parcel().write(42))
        assert result == ("pong", app.pid, 42)

    def test_dead_node_raises(self, driver, system, app, kernel):
        node = driver.create_node(system, Echo(), "echo")
        handle = driver.acquire_ref(app, node)
        kernel.kill_process(system.pid)
        with pytest.raises(DeadObjectError):
            driver.transact(app, handle, "ping", Parcel().write(1))

    def test_unknown_handle_raises(self, driver, app):
        with pytest.raises(BinderError):
            driver.transact(app, 9, "ping")

    def test_transaction_cost_charges_clock(self, kernel, system, app):
        driver = BinderDriver.__new__(BinderDriver)  # fresh, custom cost
        kernel.binder = None
        driver.__init__(kernel, transaction_cost=0.001)
        node = driver.create_node(system, Echo(), "echo")
        handle = driver.acquire_ref(app, node)
        before = kernel.clock.now
        driver.transact(app, handle, "ping", Parcel().write(1))
        assert kernel.clock.now == pytest.approx(before + 0.001)

    def test_transaction_counting(self, driver, system, app):
        node = driver.create_node(system, Echo(), "echo")
        handle = driver.acquire_ref(app, node)
        for _ in range(3):
            driver.transact(app, handle, "ping", Parcel().write(1))
        assert driver.state(app).transactions == 3
        assert driver.total_transactions == 3


class TestStateCapture:
    def test_state_of_classifies_refs(self, driver, system, app):
        node = driver.create_node(system, Echo(), "svc", system_service=True)
        handle = driver.acquire_ref(app, node)
        state = driver.state_of(app)
        (ref,) = state["refs"]
        assert ref["handle"] == handle
        assert ref["system_service"] is True
        assert ref["owner_package"] == "android"
        assert ref["label"] == "svc"

    def test_owned_nodes_listed(self, driver, app):
        driver.create_node(app, Echo(), "internal")
        state = driver.state_of(app)
        assert state["owned_nodes"][0]["label"] == "internal"

    def test_release_process_kills_owned_nodes(self, driver, system, app,
                                               kernel):
        node = driver.create_node(app, Echo(), "internal")
        handle = driver.acquire_ref(system, node)
        driver.release_process(app)
        assert not node.alive
        with pytest.raises(DeadObjectError):
            driver.transact(system, handle, "ping", Parcel().write(1))


class TestServiceManager:
    def test_lookup_returns_working_ibinder(self, driver, system, app):
        sm = ServiceManager(driver, system)
        sm.add_binder_service("echo", Echo(), system)
        remote = sm.get_service(app, "echo")
        assert isinstance(remote, IBinder)
        assert remote.transact("ping", 7) == ("pong", app.pid, 7)
        assert remote.alive

    def test_handle_zero_reaches_service_manager(self, driver, system, app):
        sm = ServiceManager(driver, system)
        sm.add_binder_service("echo", Echo(), system)
        assert driver.transact(app, 0, "checkService",
                               Parcel().write("echo")) is True
        assert driver.transact(app, 0, "listServices") == ["echo"]

    def test_unknown_service_rejected(self, driver, system, app):
        sm = ServiceManager(driver, system)
        with pytest.raises(BinderError):
            sm.get_service(app, "nothing")

    def test_duplicate_name_rejected(self, driver, system):
        sm = ServiceManager(driver, system)
        sm.add_binder_service("echo", Echo(), system)
        with pytest.raises(BinderError):
            sm.add_binder_service("echo", Echo(), system)

    def test_name_of_node(self, driver, system):
        sm = ServiceManager(driver, system)
        node = sm.add_binder_service("echo", Echo(), system)
        assert sm.name_of_node(node.node_id) == "echo"
        assert sm.name_of_node(10_000) is None


class TestParcel:
    def test_round_trip_order(self):
        parcel = Parcel().write(1).write("two").write(b"three")
        assert parcel.read() == 1
        assert parcel.read() == "two"
        assert parcel.read() == b"three"

    def test_read_past_end(self):
        from repro.android.binder.parcel import ParcelError
        with pytest.raises(ParcelError):
            Parcel().read()

    def test_tokens_are_findable(self):
        from repro.android.binder.parcel import BinderToken, FdToken
        parcel = Parcel().write(BinderToken(3)).write(FdToken(9)).write(1)
        assert parcel.binder_tokens() == [BinderToken(3)]
        assert parcel.fd_tokens() == [FdToken(9)]

    def test_size_accounts_for_strings(self):
        small = Parcel().write("a").size_bytes()
        large = Parcel().write("a" * 100).size_bytes()
        assert large > small

    def test_describe_is_serializable(self):
        import json
        parcel = Parcel().write(1).write("x").write([1, 2])
        json.dumps(parcel.describe())


class TestTransactionEvents:
    """Causal event-log integration: every transact gets a stable id."""

    @pytest.fixture
    def recorder(self, kernel):
        from repro.sim.events import FlightRecorder
        return FlightRecorder(clock=kernel.clock, device="d")

    @pytest.fixture
    def logged_driver(self, kernel, recorder):
        return BinderDriver(kernel, events=recorder)

    def test_txn_ids_are_monotonic_and_logged(self, logged_driver, recorder,
                                              system, app):
        node = logged_driver.create_node(system, Echo(), "echo")
        handle = logged_driver.acquire_ref(app, node)
        for _ in range(3):
            logged_driver.transact(app, handle, "ping", Parcel().write(1))
        events = recorder.events("binder.transact")
        assert [e.txn for e in events] == [1, 2, 3]
        assert logged_driver.total_transactions == 3
        assert all(e.attrs["interface"] == "echo" for e in events)
        assert all(e.attrs["parent_txn"] is None for e in events)

    def test_nested_transactions_carry_parent_txn(self, logged_driver,
                                                  recorder, system, app):
        driver = logged_driver
        echo = driver.create_node(system, Echo(), "echo")
        inner_handle = driver.acquire_ref(system, echo)

        class Relay(CallerAwareBinder):
            def forward(self, caller, value):
                return driver.transact(system, inner_handle, "ping",
                                       Parcel().write(value))

        relay = driver.create_node(system, Relay(), "relay")
        outer_handle = driver.acquire_ref(app, relay)
        driver.transact(app, outer_handle, "forward", Parcel().write(7))

        outer, inner = recorder.events("binder.transact")
        assert (outer.txn, outer.attrs["parent_txn"]) == (1, None)
        assert (inner.txn, inner.attrs["parent_txn"]) == (2, 1)

    def test_txn_counter_advances_with_logging_off(self, kernel, system,
                                                   app):
        from repro.sim.events import FlightRecorder
        recorder = FlightRecorder(clock=kernel.clock, device="d",
                                  enabled=False)
        driver = BinderDriver(kernel, events=recorder)
        node = driver.create_node(system, Echo(), "echo")
        handle = driver.acquire_ref(app, node)
        driver.transact(app, handle, "ping", Parcel().write(1))
        driver.transact(app, handle, "ping", Parcel().write(2))
        # Ids stay stable whether or not events are collected.
        assert driver.total_transactions == 2
        assert recorder.export() == []
