"""Binder death notifications (linkToDeath) and their framework use."""

import pytest

from repro.android.binder import BinderDriver, CallerAwareBinder, DeadObjectError
from repro.android.kernel import Kernel
from repro.sim import SimClock
from tests.conftest import DEMO_PACKAGE, launch_demo


class Echo(CallerAwareBinder):
    def ping(self, caller):
        return "pong"


class TestLinkToDeath:
    @pytest.fixture
    def setup(self):
        kernel = Kernel(SimClock())
        driver = BinderDriver(kernel)
        owner = kernel.create_process("owner", package="owner")
        holder = kernel.create_process("holder", package="holder")
        node = driver.create_node(owner, Echo(), "svc")
        handle = driver.acquire_ref(holder, node)
        return kernel, driver, owner, holder, node, handle

    def test_recipient_fires_on_owner_death(self, setup):
        kernel, driver, owner, holder, node, handle = setup
        deaths = []
        driver.link_to_death(holder, handle, deaths.append)
        kernel.kill_process(owner.pid)
        assert deaths == [node]
        assert not node.alive

    def test_recipient_fires_once(self, setup):
        kernel, driver, owner, holder, node, handle = setup
        deaths = []
        driver.link_to_death(holder, handle, deaths.append)
        kernel.kill_process(owner.pid)
        node.notify_death()     # spurious second notification
        assert len(deaths) == 1

    def test_unlink_prevents_notification(self, setup):
        kernel, driver, owner, holder, node, handle = setup
        deaths = []
        driver.link_to_death(holder, handle, deaths.append)
        assert driver.unlink_to_death(holder, handle, deaths.append)
        kernel.kill_process(owner.pid)
        assert deaths == []

    def test_link_to_dead_node_rejected(self, setup):
        kernel, driver, owner, holder, node, handle = setup
        kernel.kill_process(owner.pid)
        with pytest.raises(DeadObjectError):
            driver.link_to_death(holder, handle, lambda n: None)

    def test_unlink_unknown_recipient(self, setup):
        kernel, driver, owner, holder, node, handle = setup
        assert driver.unlink_to_death(holder, handle, lambda n: None) is False


class TestFrameworkUse:
    def test_ams_detaches_dead_app(self, device, demo_thread):
        """The AMS learns of app death through the appthread node."""
        assert device.activity_service.is_running(DEMO_PACKAGE)
        device.kernel.kill_process(demo_thread.process.pid)
        assert not device.activity_service.is_running(DEMO_PACKAGE)
        died = device.tracer.events("service:activity", "app-died")
        assert died and died[0].detail["package"] == DEMO_PACKAGE

    def test_death_cleans_receivers(self, device, demo_thread):
        from repro.android.app.intent import Intent
        hits = []
        demo_thread.register_receiver(hits.append, ["PING"])
        device.kernel.kill_process(demo_thread.process.pid)
        device.activity_service.broadcast(Intent("PING"))
        assert hits == []    # registration went with the process

    def test_migrated_app_does_not_false_trigger(self, device_pair):
        """Killing the home-side husk after migration must not detach
        the freshly migrated instance on the guest."""
        home, guest = device_pair
        launch_demo(home)
        home.pairing_service.pair(guest)
        home.migration_service.migrate(guest, DEMO_PACKAGE)
        # Home already terminated its processes during cleanup; the
        # guest attach must have survived.
        assert guest.activity_service.is_running(DEMO_PACKAGE)

    def test_appthread_node_recreated_on_guest(self, device_pair):
        home, guest = device_pair
        thread = launch_demo(home)
        home_node = thread.app_thread_node
        home.pairing_service.pair(guest)
        home.migration_service.migrate(guest, DEMO_PACKAGE)
        assert thread.app_thread_node is not home_node
        assert thread.app_thread_node.alive
        assert thread.app_thread_node.owner is thread.process
        # Guest AMS can still detect death of the migrated instance.
        guest.kernel.kill_process(thread.process.pid)
        assert not guest.activity_service.is_running(DEMO_PACKAGE)
