"""Processes, threads, namespaces, and the kernel proper."""

import pytest

from repro.android.kernel import (
    Kernel,
    KernelError,
    NamespaceError,
    PIDNamespace,
    ProcessError,
    ProcessState,
    ThreadState,
)
from repro.sim import SimClock


@pytest.fixture
def kernel():
    return Kernel(SimClock(), version="3.4")


class TestProcess:
    def test_main_thread_tid_equals_pid(self, kernel):
        process = kernel.create_process("app")
        assert process.main_thread.tid == process.pid

    def test_spawn_thread_increments_tid(self, kernel):
        process = kernel.create_process("app")
        t = process.spawn_thread("worker")
        assert t.tid == process.pid + 1

    def test_freeze_thaw_round_trip(self, kernel):
        process = kernel.create_process("app")
        process.spawn_thread("worker")
        process.freeze()
        assert process.state is ProcessState.FROZEN
        assert all(t.state is ThreadState.FROZEN for t in process.threads)
        process.thaw()
        assert process.state is ProcessState.ALIVE
        assert all(t.state is ThreadState.RUNNING for t in process.threads)

    def test_thaw_requires_frozen(self, kernel):
        process = kernel.create_process("app")
        with pytest.raises(ProcessError):
            process.thaw()

    def test_memory_footprint(self, kernel):
        from repro.android.kernel import MemoryRegion, RegionKind
        process = kernel.create_process("app")
        process.memory.map(MemoryRegion("h", RegionKind.HEAP, 4096))
        assert process.memory_footprint() == 4096


class TestKernel:
    def test_pid_allocation_monotonic(self, kernel):
        a = kernel.create_process("a")
        b = kernel.create_process("b")
        assert b.pid > a.pid

    def test_explicit_pid(self, kernel):
        process = kernel.create_process("a", pid=5000)
        assert process.pid == 5000
        with pytest.raises(KernelError):
            kernel.create_process("b", pid=5000)

    def test_kill_removes_process_and_releases_wakelocks(self, kernel):
        process = kernel.create_process("a")
        kernel.wakelocks.acquire(process, "lock")
        kernel.kill_process(process.pid)
        assert not kernel.has_pid(process.pid)
        assert kernel.wakelocks.can_sleep
        with pytest.raises(KernelError):
            kernel.process(process.pid)

    def test_processes_of_package(self, kernel):
        kernel.create_process("a:main", package="a")
        kernel.create_process("a:push", package="a")
        kernel.create_process("b:main", package="b")
        assert len(kernel.processes_of_package("a")) == 2

    def test_duplicate_driver_rejected(self, kernel):
        from repro.android.kernel.drivers.logger import LoggerDriver
        with pytest.raises(KernelError):
            kernel.register_driver(LoggerDriver(kernel))

    def test_unknown_driver_rejected(self, kernel):
        with pytest.raises(KernelError):
            kernel.driver("gpu")


class TestPIDNamespace:
    def test_bind_and_translate(self):
        ns = PIDNamespace("test")
        ns.bind(100, 4242)
        assert ns.to_real(100) == 4242
        assert ns.to_virtual(4242) == 100
        assert ns.has_virtual(100)

    def test_duplicate_bind_rejected(self):
        ns = PIDNamespace()
        ns.bind(100, 4242)
        with pytest.raises(NamespaceError):
            ns.bind(100, 5555)
        with pytest.raises(NamespaceError):
            ns.bind(200, 4242)

    def test_unknown_lookup_rejected(self):
        ns = PIDNamespace()
        with pytest.raises(NamespaceError):
            ns.to_real(1)
        with pytest.raises(NamespaceError):
            ns.to_virtual(1)

    def test_kill_unbinds_from_namespaces(self):
        kernel = Kernel(SimClock())
        process = kernel.create_process("a")
        ns = kernel.create_pid_namespace("flux")
        ns.bind(999, process.pid)
        kernel.kill_process(process.pid)
        assert len(ns) == 0

    def test_same_virtual_pid_in_two_namespaces(self):
        """The whole point: identical virtual pids may coexist."""
        ns1, ns2 = PIDNamespace(), PIDNamespace()
        ns1.bind(42, 100)
        ns2.bind(42, 200)
        assert ns1.to_real(42) == 100
        assert ns2.to_real(42) == 200
