"""Android-specific drivers: ashmem, pmem, logger, alarm, wakelocks."""

import pytest

from repro.android.kernel import Kernel
from repro.android.kernel.drivers.base import DriverError
from repro.android.kernel.memory import RegionKind
from repro.sim import SimClock


@pytest.fixture
def kernel():
    return Kernel(SimClock())


@pytest.fixture
def process(kernel):
    return kernel.create_process("app", package="app")


class TestAshmem:
    def test_create_map_unmap(self, kernel, process):
        kernel.ashmem.create_region(process, "dalvik-heap", 4096)
        mapping = kernel.ashmem.map_region(process, "dalvik-heap")
        assert mapping.kind is RegionKind.ASHMEM
        assert process.memory.has("ashmem:dalvik-heap")
        kernel.ashmem.unmap_region(process, "dalvik-heap")
        assert not process.memory.has("ashmem:dalvik-heap")

    def test_duplicate_region_rejected(self, kernel, process):
        kernel.ashmem.create_region(process, "x", 1)
        with pytest.raises(DriverError):
            kernel.ashmem.create_region(process, "x", 1)

    def test_checkpoint_restore_round_trip(self, kernel, process):
        kernel.ashmem.create_region(process, "named", 2048)
        kernel.ashmem.map_region(process, "named")
        state = kernel.ashmem.checkpoint_state(process)
        assert state == {"regions": [{"name": "named", "size": 2048}]}

        other_kernel = Kernel(SimClock())
        other = other_kernel.create_process("app", package="app")
        other_kernel.ashmem.restore_state(other, state)
        assert other.memory.has("ashmem:named")

    def test_no_state_when_unused(self, kernel, process):
        assert kernel.ashmem.checkpoint_state(process) is None


class TestPmem:
    def test_allocate_maps_device_specific_region(self, kernel, process):
        alloc = kernel.pmem.allocate(process, 1 << 20, "gl-texture-pool")
        region = process.memory.get(f"pmem:{alloc.alloc_id}")
        assert region.device_specific

    def test_free_all_returns_bytes(self, kernel, process):
        kernel.pmem.allocate(process, 100, "a")
        kernel.pmem.allocate(process, 200, "b")
        assert kernel.pmem.free_all(process) == 300
        assert kernel.pmem.allocations_of(process.pid) == []

    def test_checkpoint_with_live_allocation_rejected(self, kernel, process):
        kernel.pmem.allocate(process, 100, "a")
        with pytest.raises(DriverError):
            kernel.pmem.checkpoint_state(process)

    def test_bad_size_rejected(self, kernel, process):
        with pytest.raises(DriverError):
            kernel.pmem.allocate(process, 0, "zero")


class TestLogger:
    def test_write_read_filter_by_pid(self, kernel, process):
        other = kernel.create_process("other")
        kernel.logger.write(process, "App", "hello")
        kernel.logger.write(other, "Other", "noise")
        mine = kernel.logger.read(pid=process.pid)
        assert len(mine) == 1
        assert mine[0].message == "hello"

    def test_keeps_no_per_process_state(self, kernel, process):
        kernel.logger.write(process, "App", "hello")
        assert kernel.logger.checkpoint_state(process) is None

    def test_unknown_buffer_rejected(self, kernel, process):
        with pytest.raises(DriverError):
            kernel.logger.write(process, "t", "m", buffer="bogus")

    def test_ring_buffer_caps_entries(self):
        kernel = Kernel(SimClock())
        from repro.android.kernel.drivers.logger import LoggerDriver
        driver = LoggerDriver(kernel, capacity=3)
        process = kernel.create_process("a")
        for i in range(5):
            driver.write(process, "t", f"m{i}")
        assert [e.message for e in driver.read()] == ["m2", "m3", "m4"]


class TestAlarmDriver:
    def test_alarm_fires_at_deadline(self, kernel):
        fired = []
        kernel.alarm.set_alarm(2.0, lambda: fired.append(kernel.clock.now))
        kernel.clock.advance(3.0)
        assert fired == [2.0]
        assert kernel.alarm.pending() == 0

    def test_cancel_prevents_firing(self, kernel):
        fired = []
        alarm = kernel.alarm.set_alarm(2.0, lambda: fired.append(1))
        kernel.alarm.cancel(alarm.alarm_id)
        kernel.clock.advance(3.0)
        assert fired == []

    def test_cancel_unknown_rejected(self, kernel):
        with pytest.raises(DriverError):
            kernel.alarm.cancel(999)


class TestWakelocks:
    def test_acquire_blocks_sleep(self, kernel, process):
        kernel.wakelocks.acquire(process, "media")
        assert not kernel.wakelocks.can_sleep
        kernel.wakelocks.release(process, "media")
        assert kernel.wakelocks.can_sleep

    def test_release_by_non_holder_rejected(self, kernel, process):
        other = kernel.create_process("other")
        kernel.wakelocks.acquire(process, "media")
        with pytest.raises(DriverError):
            kernel.wakelocks.release(other, "media")

    def test_double_acquire_rejected(self, kernel, process):
        kernel.wakelocks.acquire(process, "media")
        with pytest.raises(DriverError):
            kernel.wakelocks.acquire(process, "media")

    def test_release_all(self, kernel, process):
        kernel.wakelocks.acquire(process, "a")
        kernel.wakelocks.acquire(process, "b")
        assert kernel.wakelocks.release_all(process.pid) == 2
        assert kernel.wakelocks.can_sleep
