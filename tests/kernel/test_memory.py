"""Address-space model."""

import pytest
from hypothesis import given, strategies as st

from repro.android.kernel.memory import (
    AddressSpace,
    MemoryError_,
    MemoryRegion,
    RegionKind,
)


class TestRegions:
    def test_map_and_get(self):
        space = AddressSpace()
        region = space.map(MemoryRegion("heap", RegionKind.HEAP, 1024))
        assert space.get("heap") is region
        assert space.has("heap")

    def test_double_map_rejected(self):
        space = AddressSpace()
        space.map(MemoryRegion("heap", RegionKind.HEAP, 1024))
        with pytest.raises(MemoryError_):
            space.map(MemoryRegion("heap", RegionKind.HEAP, 2048))

    def test_unmap_returns_region(self):
        space = AddressSpace()
        space.map(MemoryRegion("x", RegionKind.MMAP, 10))
        assert space.unmap("x").name == "x"
        assert not space.has("x")

    def test_unmap_missing_rejected(self):
        with pytest.raises(MemoryError_):
            AddressSpace().unmap("nope")

    def test_negative_size_rejected(self):
        with pytest.raises(MemoryError_):
            MemoryRegion("bad", RegionKind.HEAP, -1)

    def test_device_specific_classification(self):
        assert MemoryRegion("p", RegionKind.PMEM, 1).device_specific
        assert MemoryRegion("v", RegionKind.GL_VENDOR, 1).device_specific
        assert MemoryRegion("c", RegionKind.GL_CONTEXT, 1).device_specific
        assert MemoryRegion("s", RegionKind.SURFACE, 1).device_specific
        assert not MemoryRegion("h", RegionKind.HEAP, 1).device_specific
        assert not MemoryRegion("m", RegionKind.MMAP, 1).device_specific

    def test_device_specific_regions_listing(self):
        space = AddressSpace()
        space.map(MemoryRegion("h", RegionKind.HEAP, 8))
        space.map(MemoryRegion("g", RegionKind.GL_CONTEXT, 8))
        assert [r.name for r in space.device_specific_regions()] == ["g"]

    def test_total_size_by_kind(self):
        space = AddressSpace()
        space.map(MemoryRegion("h1", RegionKind.HEAP, 100))
        space.map(MemoryRegion("h2", RegionKind.HEAP, 50))
        space.map(MemoryRegion("s", RegionKind.STACK, 10))
        assert space.total_size() == 160
        assert space.total_size(RegionKind.HEAP) == 150


class TestContentHash:
    def test_clone_preserves_hash(self):
        region = MemoryRegion("h", RegionKind.HEAP, 64, payload=b"state")
        assert region.clone().content_hash() == region.content_hash()

    def test_hash_covers_payload(self):
        a = MemoryRegion("h", RegionKind.HEAP, 64, payload=b"one")
        b = MemoryRegion("h", RegionKind.HEAP, 64, payload=b"two")
        assert a.content_hash() != b.content_hash()

    def test_hash_covers_size_and_name(self):
        a = MemoryRegion("h", RegionKind.HEAP, 64)
        b = MemoryRegion("h", RegionKind.HEAP, 65)
        c = MemoryRegion("g", RegionKind.HEAP, 64)
        assert len({a.content_hash(), b.content_hash(), c.content_hash()}) == 3


@given(st.lists(st.tuples(st.sampled_from(list(RegionKind)),
                          st.integers(min_value=0, max_value=10**9)),
                max_size=30))
def test_total_size_is_sum_of_mapped_regions(entries):
    space = AddressSpace()
    expected = 0
    for i, (kind, size) in enumerate(entries):
        space.map(MemoryRegion(f"r{i}", kind, size))
        expected += size
    assert space.total_size() == expected
    assert len(space) == len(entries)
