"""File-descriptor layer: tables, sockets, reservation, dup2."""

import pytest

from repro.android.kernel.files import (
    DeviceFile,
    FDTable,
    FdError,
    OpenFile,
    Pipe,
    UnixSocket,
)


class TestFdTable:
    def test_lowest_free_allocation(self):
        table = FDTable()
        assert table.install(OpenFile("/a")) == 0
        assert table.install(OpenFile("/b")) == 1
        table.close(0)
        assert table.install(OpenFile("/c")) == 0

    def test_explicit_fd(self):
        table = FDTable()
        assert table.install(OpenFile("/a"), fd=7) == 7
        with pytest.raises(FdError):
            table.install(OpenFile("/b"), fd=7)

    def test_reserved_fds_are_skipped(self):
        table = FDTable()
        table.reserve(0, "socket")
        table.reserve(1, "socket")
        assert table.install(OpenFile("/a")) == 2
        assert table.reserved() == {0: "socket", 1: "socket"}

    def test_cannot_reserve_in_use_fd(self):
        table = FDTable()
        table.install(OpenFile("/a"), fd=3)
        with pytest.raises(FdError):
            table.reserve(3, "x")

    def test_dup2_clears_reservation(self):
        table = FDTable()
        table.reserve(5, "socket")
        sock, _ = UnixSocket.pair()
        assert table.dup2(sock, 5) == 5
        assert table.get(5) is sock
        assert 5 not in table.reserved()

    def test_close_missing_rejected(self):
        with pytest.raises(FdError):
            FDTable().close(9)

    def test_find_by_predicate(self):
        table = FDTable()
        table.install(OpenFile("/a"))
        sock, _ = UnixSocket.pair()
        table.install(sock)
        hits = table.find(lambda o: isinstance(o, UnixSocket))
        assert len(hits) == 1
        assert hits[0].obj is sock


class TestUnixSocket:
    def test_pair_delivers_both_ways(self):
        service, client = UnixSocket.pair("events")
        service.send(b"hello")
        assert client.recv() == b"hello"
        client.send(b"yo")
        assert service.recv() == b"yo"
        assert client.recv() is None

    def test_closed_socket_refuses_send(self):
        service, client = UnixSocket.pair()
        client.close()
        with pytest.raises(FdError):
            service.send(b"x")

    def test_describe_carries_channel_identity(self):
        service, client = UnixSocket.pair("sensor")
        assert service.describe()["channel_id"] == client.describe()["channel_id"]
        assert service.describe()["role"] == "service"
        assert client.describe()["role"] == "client"

    def test_close_via_fd_table(self):
        table = FDTable()
        service, client = UnixSocket.pair()
        fd = table.install(client)
        table.close(fd)
        assert client.closed


class TestDescriptions:
    def test_open_file_describe(self):
        f = OpenFile("/data/x", "rw", offset=12)
        assert f.describe() == {"kind": "file", "path": "/data/x",
                                "flags": "rw", "offset": 12}

    def test_device_file_describe_copies_state(self):
        d = DeviceFile("binder", {"a": 1})
        desc = d.describe()
        desc["state"]["a"] = 2
        assert d.state["a"] == 1

    def test_pipe_pair_shares_buffer(self):
        read_end, write_end = Pipe.pair()
        write_end.buffer.append(b"x")
        assert read_end.buffer == [b"x"]
        assert read_end.pipe_id == write_end.pipe_id
