"""Recorder: the end-to-end proxy -> rule engine -> log path."""

import pytest

from repro.android.aidl import InterfaceRegistry
from repro.core.record import CallLog, Recorder, RecorderError
from repro.sim import SimClock


SOURCE = """
interface IThing {
    @record
    void put(int key, String value);
    @record {
        @drop this, put;
        @if key;
    }
    void erase(int key);
    int size();
}
"""


@pytest.fixture
def recorder():
    registry = InterfaceRegistry()
    registry.compile_source(SOURCE)
    return Recorder(registry, CallLog(), SimClock())


class TestRecorder:
    def test_record_and_prune(self, recorder):
        app = recorder.bind_app("com.a")
        app.on_call("IThing", "put", {"key": 1, "value": "x"}, None)
        app.on_call("IThing", "put", {"key": 2, "value": "y"}, None)
        app.on_call("IThing", "erase", {"key": 1}, None)
        entries = recorder.extract_app_log("com.a")
        assert [(e.method, e.args["key"]) for e in entries] == [("put", 2)]
        assert recorder.calls_seen == 3
        assert recorder.calls_suppressed == 1

    def test_apps_are_isolated(self, recorder):
        recorder.bind_app("com.a").on_call("IThing", "put",
                                           {"key": 1, "value": "x"}, None)
        recorder.bind_app("com.b").on_call("IThing", "erase",
                                           {"key": 1}, None)
        assert len(recorder.extract_app_log("com.a")) == 1
        assert len(recorder.extract_app_log("com.b")) == 1

    def test_disabled_recorder_records_nothing(self, recorder):
        recorder.enabled = False
        app = recorder.bind_app("com.a")
        assert app.on_call("IThing", "put", {"key": 1, "value": "x"},
                           None) is None
        assert recorder.extract_app_log("com.a") == []

    def test_undecorated_method_is_a_bug(self, recorder):
        app = recorder.bind_app("com.a")
        with pytest.raises(RecorderError):
            app.on_call("IThing", "size", {}, None)

    def test_recording_charges_cpu_time(self):
        registry = InterfaceRegistry()
        registry.compile_source(SOURCE)
        clock = SimClock()
        recorder = Recorder(registry, CallLog(), clock, cpu_factor=1.0)
        recorder.bind_app("a").on_call("IThing", "put",
                                       {"key": 1, "value": "x"}, None)
        assert clock.now == pytest.approx(Recorder.RECORD_CPU_COST)

    def test_slower_cpu_pays_more(self):
        registry = InterfaceRegistry()
        registry.compile_source(SOURCE)
        clock = SimClock()
        recorder = Recorder(registry, CallLog(), clock, cpu_factor=0.5)
        recorder.bind_app("a").on_call("IThing", "put",
                                       {"key": 1, "value": "x"}, None)
        assert clock.now == pytest.approx(2 * Recorder.RECORD_CPU_COST)

    def test_forget_app(self, recorder):
        app = recorder.bind_app("com.a")
        app.on_call("IThing", "put", {"key": 1, "value": "x"}, None)
        assert recorder.forget_app("com.a") == 1
        assert recorder.extract_app_log("com.a") == []
