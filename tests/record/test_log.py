"""CallLog: SQLite-indexed append/prune store."""

import pytest
from hypothesis import given, strategies as st

from repro.core.record.log import CallLog, CallRecord


@pytest.fixture
def log():
    return CallLog()


class TestAppendQuery:
    def test_entries_in_order(self, log):
        log.append(0.0, "app", "I", "a", {})
        log.append(1.0, "app", "I", "b", {})
        assert [r.method for r in log.entries("app")] == ["a", "b"]

    def test_apps_are_isolated(self, log):
        log.append(0.0, "one", "I", "a", {})
        log.append(0.0, "two", "I", "a", {})
        assert len(log.entries("one")) == 1
        assert log.apps() == ["one", "two"]

    def test_filter_by_interface_and_method(self, log):
        log.append(0.0, "app", "IA", "x", {})
        log.append(0.0, "app", "IB", "x", {})
        log.append(0.0, "app", "IA", "y", {})
        assert len(log.entries("app", interface="IA")) == 2
        assert len(log.entries("app", interface="IA", method="x")) == 1

    def test_entries_for_methods_merges_in_seq_order(self, log):
        log.append(0.0, "app", "I", "b", {})
        log.append(0.0, "app", "I", "a", {})
        log.append(0.0, "app", "I", "b", {})
        records = log.entries_for_methods("app", "I", ["a", "b"])
        assert [r.method for r in records] == ["b", "a", "b"]

    def test_args_preserved_as_objects(self, log):
        payload = object()
        log.append(0.0, "app", "I", "m", {"obj": payload})
        assert log.entries("app")[0].args["obj"] is payload


class TestRemoval:
    def test_remove_by_seq(self, log):
        r1 = log.append(0.0, "app", "I", "a", {})
        r2 = log.append(0.0, "app", "I", "b", {})
        assert log.remove([r1.seq]) == 1
        assert [r.seq for r in log.entries("app")] == [r2.seq]
        assert log.dropped == 1

    def test_remove_is_idempotent(self, log):
        r = log.append(0.0, "app", "I", "a", {})
        assert log.remove([r.seq]) == 1
        assert log.remove([r.seq]) == 0

    def test_remove_app_clears_everything(self, log):
        for i in range(5):
            log.append(0.0, "app", "I", "m", {"i": i})
        log.append(0.0, "other", "I", "m", {})
        assert log.remove_app("app") == 5
        assert log.count("app") == 0
        assert log.count("other") == 1


class TestSizing:
    def test_size_grows_with_args(self, log):
        log.append(0.0, "a", "I", "m", {"text": "x"})
        log.append(0.0, "b", "I", "m", {"text": "x" * 500})
        assert log.size_bytes("b") > log.size_bytes("a")

    def test_record_size_estimates_common_types(self):
        record = CallRecord(1, 0.0, "a", "I", "m",
                            {"i": 1, "s": "ab", "l": [1, 2], "d": {"k": 1},
                             "obj": object(), "b": b"xyz"})
        assert record.estimated_size() > 0


@given(st.lists(st.sampled_from(["a", "b", "c"]), max_size=40))
def test_count_invariant_appended_minus_dropped(methods):
    log = CallLog()
    seqs = []
    for method in methods:
        seqs.append(log.append(0.0, "app", "I", method, {}).seq)
    to_drop = seqs[::2]
    log.remove(to_drop)
    assert log.count("app") == log.appended - log.dropped
    assert log.count("app") == len(methods) - len(to_drop)


class TestExport:
    def test_export_and_read_back(self, log, tmp_path):
        log.append(1.0, "app", "I", "put", {"key": 1, "obj": object()})
        log.append(2.0, "app", "I", "erase", {"key": 1})
        path = str(tmp_path / "calllog.db")
        assert log.export_index(path) == 2
        rows = CallLog.read_exported(path)
        assert [r["method"] for r in rows] == ["put", "erase"]
        assert rows[0]["args"]["key"] == 1
        assert rows[0]["args"]["obj"]["__object__"] == "object"

    def test_export_reflects_pruning(self, log, tmp_path):
        first = log.append(1.0, "app", "I", "a", {})
        log.append(2.0, "app", "I", "b", {})
        log.remove([first.seq])
        path = str(tmp_path / "calllog.db")
        assert log.export_index(path) == 1
        (row,) = CallLog.read_exported(path)
        assert row["method"] == "b"

    def test_export_overwrites(self, log, tmp_path):
        path = str(tmp_path / "calllog.db")
        log.append(1.0, "app", "I", "a", {})
        log.export_index(path)
        log.append(2.0, "app", "I", "b", {})
        assert log.export_index(path) == 2
        assert len(CallLog.read_exported(path)) == 2
