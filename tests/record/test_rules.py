"""Drop-rule semantics: the executable heart of Table 1.

The two worked examples from the paper (NotificationManager, Figure 7;
AlarmManager, Figure 9) must both behave correctly under one semantics.
"""

import pytest
from hypothesis import given, strategies as st

from repro.android.aidl import parse_interface
from repro.core.record.log import CallLog
from repro.core.record.rules import apply_drop_rules, describe_rules


NOTIFICATION = parse_interface("""
interface INotificationManager {
    @record
    void enqueueNotification(int id, Notification notification);
    @record {
        @drop this, enqueueNotification;
        @if id;
    }
    void cancelNotification(int id);
}
""")

ALARM = parse_interface("""
interface IAlarmManager {
    @record {
        @drop this;
        @if operation;
    }
    void set(int type, long triggerAtTime, in PendingIntent operation);
    @record {
        @drop this, set;
        @if operation;
    }
    void remove(in PendingIntent operation);
}
""")


APP = "com.app"
IFACE_N = "INotificationManager"
IFACE_A = "IAlarmManager"


def record_call(log, iface, decl, method, args):
    """Run the rule engine for a call, appending when not suppressed."""
    decoration = decl.method(method).decoration
    outcome = apply_drop_rules(log, APP, iface, method, args, decoration)
    if not outcome.suppress_current:
        log.append(0.0, APP, iface, method, args)
    return outcome


class TestNotificationSemantics:
    def test_cancel_annihilates_matching_enqueue(self):
        log = CallLog()
        record_call(log, IFACE_N, NOTIFICATION, "enqueueNotification",
                    {"id": 1, "notification": "hi"})
        record_call(log, IFACE_N, NOTIFICATION, "enqueueNotification",
                    {"id": 2, "notification": "yo"})
        outcome = record_call(log, IFACE_N, NOTIFICATION,
                              "cancelNotification", {"id": 1})
        assert outcome.suppress_current
        assert outcome.removed_count == 1
        remaining = log.entries(APP)
        assert [(r.method, r.args["id"]) for r in remaining] == \
            [("enqueueNotification", 2)]

    def test_cancel_without_match_is_recorded(self):
        log = CallLog()
        outcome = record_call(log, IFACE_N, NOTIFICATION,
                              "cancelNotification", {"id": 9})
        assert not outcome.suppress_current
        assert [r.method for r in log.entries(APP)] == ["cancelNotification"]

    def test_cancel_also_drops_previous_cancels(self):
        log = CallLog()
        record_call(log, IFACE_N, NOTIFICATION, "cancelNotification",
                    {"id": 5})
        record_call(log, IFACE_N, NOTIFICATION, "enqueueNotification",
                    {"id": 5, "notification": "x"})
        outcome = record_call(log, IFACE_N, NOTIFICATION,
                              "cancelNotification", {"id": 5})
        # Drops both the stale cancel and the enqueue; suppressed.
        assert outcome.removed_count == 2
        assert outcome.suppress_current
        assert log.entries(APP) == []

    def test_different_id_not_dropped(self):
        log = CallLog()
        record_call(log, IFACE_N, NOTIFICATION, "enqueueNotification",
                    {"id": 1, "notification": "keep"})
        record_call(log, IFACE_N, NOTIFICATION, "cancelNotification",
                    {"id": 2})
        methods = [r.method for r in log.entries(APP)]
        assert methods == ["enqueueNotification", "cancelNotification"]


class TestAlarmSemantics:
    def test_set_replaces_previous_set_and_is_recorded(self):
        log = CallLog()
        record_call(log, IFACE_A, ALARM, "set",
                    {"type": 1, "triggerAtTime": 10.0, "operation": "op-a"})
        outcome = record_call(log, IFACE_A, ALARM, "set",
                              {"type": 1, "triggerAtTime": 99.0,
                               "operation": "op-a"})
        assert not outcome.suppress_current     # replacement is recorded
        assert outcome.removed_count == 1
        (entry,) = log.entries(APP)
        assert entry.args["triggerAtTime"] == 99.0

    def test_remove_annihilates_matching_set(self):
        log = CallLog()
        record_call(log, IFACE_A, ALARM, "set",
                    {"type": 1, "triggerAtTime": 10.0, "operation": "op-a"})
        outcome = record_call(log, IFACE_A, ALARM, "remove",
                              {"operation": "op-a"})
        assert outcome.suppress_current
        assert log.entries(APP) == []

    def test_sets_with_distinct_operations_coexist(self):
        log = CallLog()
        record_call(log, IFACE_A, ALARM, "set",
                    {"type": 1, "triggerAtTime": 10.0, "operation": "op-a"})
        record_call(log, IFACE_A, ALARM, "set",
                    {"type": 1, "triggerAtTime": 20.0, "operation": "op-b"})
        assert log.count(APP) == 2


class TestGeneralSemantics:
    UNCONDITIONAL = parse_interface("""
    interface IAudio {
        @record {
            @drop this;
        }
        void setRingerMode(int mode);
    }
    """)

    def test_unconditional_drop_is_last_write_wins(self):
        log = CallLog()
        for mode in (0, 1, 2):
            record_call(log, "IAudio", self.UNCONDITIONAL, "setRingerMode",
                        {"mode": mode})
        (entry,) = log.entries(APP)
        assert entry.args["mode"] == 2

    ELIF = parse_interface("""
    interface IX {
        @record {
            @drop this;
            @if a;
            @elif b;
        }
        void f(int a, int b);
    }
    """)

    def test_elif_matches_alternative_signature(self):
        log = CallLog()
        record_call(log, "IX", self.ELIF, "f", {"a": 1, "b": 10})
        # Matches on b (elif) even though a differs.
        record_call(log, "IX", self.ELIF, "f", {"a": 2, "b": 10})
        assert log.count(APP) == 1
        # Matches neither signature: both survive.
        record_call(log, "IX", self.ELIF, "f", {"a": 3, "b": 30})
        assert log.count(APP) == 2

    def test_missing_parameter_cannot_match(self):
        missing = parse_interface("""
        interface IY {
            @record
            void g(int other);
            @record {
                @drop this, g;
                @if a;
            }
            void f(int a);
        }
        """)
        log = CallLog()
        record_call(log, "IY", missing, "g", {"other": 1})
        record_call(log, "IY", missing, "f", {"a": 1})
        # g has no parameter 'a', so it can never match f's signature.
        assert log.count(APP) == 2

    def test_describe_rules_is_readable(self):
        decl = ALARM.method("set").decoration
        lines = describe_rules(decl)
        assert lines == ["drop this if (operation)"]

    @given(st.lists(st.tuples(st.booleans(), st.integers(0, 3)),
                    max_size=30))
    def test_notification_log_never_holds_cancelled_pair(self, ops):
        """Invariant: after any op sequence, no (enqueue, cancel) pair
        with the same id coexists in the log."""
        log = CallLog()
        for is_cancel, nid in ops:
            if is_cancel:
                record_call(log, IFACE_N, NOTIFICATION,
                            "cancelNotification", {"id": nid})
            else:
                record_call(log, IFACE_N, NOTIFICATION,
                            "enqueueNotification",
                            {"id": nid, "notification": "n"})
        entries = log.entries(APP)
        for cancel in (e for e in entries
                       if e.method == "cancelNotification"):
            stale_enqueues = [e for e in entries
                              if e.method == "enqueueNotification"
                              and e.args["id"] == cancel.args["id"]
                              and e.seq < cancel.seq]
            assert not stale_enqueues
