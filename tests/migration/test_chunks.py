"""Content-addressed chunking, the chunk store, and the pipelined path."""

import pytest

from repro.core.cria import checkpoint_app, prepare_app
from repro.core.extensions import FluxExtensions
from repro.core.migration import costs
from repro.core.migration.chunks import (
    CHUNK_BYTES,
    Chunk,
    ChunkStore,
    chunk_image,
)
from tests.conftest import DEMO_PACKAGE, launch_demo


@pytest.fixture
def image(device, demo_thread):
    prepare_app(device, DEMO_PACKAGE)
    return checkpoint_app(device, DEMO_PACKAGE)


class TestChunkImage:
    def test_sizes_sum_to_raw_bytes(self, image):
        chunks = chunk_image(image)
        assert sum(c.raw_bytes for c in chunks) == image.raw_bytes()

    def test_wire_bytes_track_compression(self, image):
        from repro.core.cria.image import IMAGE_COMPRESSION_RATIO
        for chunk in chunk_image(image):
            assert chunk.wire_bytes == int(
                chunk.raw_bytes * IMAGE_COMPRESSION_RATIO)

    def test_chunks_respect_chunk_size(self, image):
        for chunk in chunk_image(image, chunk_bytes=4096):
            if chunk.label.startswith(("descriptors", "record-log")):
                continue
            assert chunk.raw_bytes <= 4096

    def test_digests_stable_across_calls(self, image):
        a = [c.digest for c in chunk_image(image)]
        b = [c.digest for c in chunk_image(image)]
        assert a == b

    def test_region_change_invalidates_its_chunks_only(self, image):
        before = {c.label: c.digest for c in chunk_image(image)}
        heap = next(r for r in image.main_process.regions
                    if r.name == "dalvik-heap")
        heap.payload += b"mutation"
        after = {c.label: c.digest for c in chunk_image(image)}
        assert before.keys() == after.keys()
        changed = {label for label in before
                   if before[label] != after[label]}
        assert changed == {label for label in before
                           if ":dalvik-heap:" in label}

    def test_code_regions_never_chunked(self, image):
        labels = {c.label for c in chunk_image(image)}
        for proc in image.processes:
            for region in proc.regions:
                if region.kind.value == "code":
                    assert not any(f":{region.name}:" in l for l in labels)

    def test_descriptor_chunk_keyed_by_checkpoint_time(self, image):
        first = chunk_image(image)[0]
        image.checkpoint_time += 1.0
        second = chunk_image(image)[0]
        assert first.label == second.label == "descriptors"
        assert first.digest != second.digest

    def test_bad_chunk_size_rejected(self, image):
        with pytest.raises(ValueError):
            chunk_image(image, chunk_bytes=0)


class TestChunkStore:
    def _chunk(self, n, size=100):
        return Chunk(digest=f"d{n}", raw_bytes=size, label=f"c{n}")

    def test_split_partitions_and_counts(self):
        store = ChunkStore()
        chunks = [self._chunk(i) for i in range(4)]
        store.add_many(chunks[:2])
        cached, missing = store.split(chunks)
        assert [c.digest for c in cached] == ["d0", "d1"]
        assert [c.digest for c in missing] == ["d2", "d3"]
        assert store.hits == 2 and store.misses == 2
        assert store.hit_rate == 0.5

    def test_add_is_idempotent(self):
        store = ChunkStore()
        store.add(self._chunk(1))
        store.add(self._chunk(1))
        assert len(store) == 1
        assert store.bytes_stored == 100

    def test_lru_eviction_by_bytes(self):
        store = ChunkStore(capacity_bytes=250)
        for i in range(3):
            store.add(self._chunk(i))
        # 300 bytes > 250: oldest chunk evicted.
        assert store.evictions == 1
        assert "d0" not in store and "d2" in store
        assert store.bytes_stored == 200

    def test_split_refreshes_lru_position(self):
        store = ChunkStore(capacity_bytes=200)
        store.add(self._chunk(0))
        store.add(self._chunk(1))
        store.split([self._chunk(0)])          # d0 becomes most recent
        store.add(self._chunk(2))              # evicts d1, not d0
        assert "d0" in store and "d1" not in store

    def test_clear(self):
        store = ChunkStore()
        store.add_many(self._chunk(i) for i in range(5))
        store.clear()
        assert len(store) == 0 and store.bytes_stored == 0

    def test_bad_capacity_rejected(self):
        with pytest.raises(ValueError):
            ChunkStore(capacity_bytes=0)


class TestCostModel:
    def test_rate_split_conserves_cpu_work(self):
        # Pipelined mode must do the same total CPU work as the serial
        # path: serialize + compress == the calibrated checkpoint cost.
        for raw in (1, 4096, 13_500_000):
            for cpu in (0.8, 1.0, 1.4):
                split = (costs.serialize_cost(raw, cpu)
                         + costs.chunk_compress_cost(raw, cpu))
                assert split == pytest.approx(costs.checkpoint_cost(raw, cpu))

    def test_pipeline_bounds(self):
        prep = [0.3, 0.1, 0.2]
        send = [0.2, 0.4, 0.1]
        total = costs.pipeline_seconds(prep, send)
        assert total >= max(sum(prep), sum(send))
        assert total < sum(prep) + sum(send)

    def test_pipeline_degenerate_cases(self):
        assert costs.pipeline_seconds([], []) == 0.0
        assert costs.pipeline_seconds([1.0], [2.0]) == 3.0

    def test_pipeline_link_bound(self):
        # Slow link: completion is fill (first compress) + all sends.
        total = costs.pipeline_seconds([0.1] * 4, [1.0] * 4)
        assert total == pytest.approx(0.1 + 4.0)


class TestPipelinedMigration:
    EXT = FluxExtensions(pipelined_transfer=True)

    def _migrate(self, home, guest):
        return home.migration_service.migrate(guest, DEMO_PACKAGE,
                                              extensions=self.EXT)

    def test_first_migration_all_misses(self, device_pair):
        home, guest = device_pair
        launch_demo(home)
        home.pairing_service.pair(guest)
        report = self._migrate(home, guest)
        assert report.success
        assert report.transfer_chunks_total > 0
        assert report.transfer_chunks_cached == 0
        assert report.chunk_hit_rate == 0.0

    def test_repeat_migration_hits_cache(self, device_pair):
        home, guest = device_pair
        launch_demo(home)
        home.pairing_service.pair(guest)
        first = self._migrate(home, guest)
        back = self._migrate(guest, home)
        repeat = self._migrate(home, guest)
        assert repeat.chunk_hit_rate > 0
        assert repeat.transfer_chunks_cached > 0
        assert repeat.image_wire_bytes < first.image_wire_bytes
        assert repeat.transferred_bytes < first.transferred_bytes
        assert repeat.stages["transfer"] < first.stages["transfer"]
        # The return hop also benefits: home cached the chunks it sent.
        assert back.chunk_hit_rate > 0

    def test_cache_survives_ring(self, device_pair):
        """home -> guest -> home -> guest: stores persist across hops."""
        home, guest = device_pair
        launch_demo(home)
        home.pairing_service.pair(guest)
        self._migrate(home, guest)
        assert len(guest.chunk_store) > 0
        assert len(home.chunk_store) > 0
        self._migrate(guest, home)
        repeat = self._migrate(home, guest)
        assert repeat.success
        assert repeat.chunk_hit_rate > 0.5

    def test_cleared_cache_means_full_transfer(self, device_pair):
        home, guest = device_pair
        launch_demo(home)
        home.pairing_service.pair(guest)
        first = self._migrate(home, guest)
        self._migrate(guest, home)
        home.chunk_store.clear()
        guest.chunk_store.clear()
        repeat = self._migrate(home, guest)
        assert repeat.transfer_chunks_cached == 0

    def test_default_path_moves_whole_image(self, device_pair):
        home, guest = device_pair
        launch_demo(home)
        home.pairing_service.pair(guest)
        report = home.migration_service.migrate(guest, DEMO_PACKAGE)
        # No digest negotiation on the serial path: the full compressed
        # image crosses the wire and nothing is reported as chunked.
        assert report.transfer_chunks_total == 0
        assert report.chunk_hit_rate == 0.0
        assert report.image_wire_bytes == report.image_compressed_bytes
        # ...but both ends still index what crossed, so a later
        # pipelined hop can dedupe against a serial one.
        assert len(guest.chunk_store) > 0
        assert guest.chunk_store.hits == 0
        assert guest.chunk_store.misses == 0

    def test_pipelined_after_serial_dedupes(self, device_pair):
        home, guest = device_pair
        launch_demo(home)
        home.pairing_service.pair(guest)
        home.migration_service.migrate(guest, DEMO_PACKAGE)
        # Send it back serially too, then pipeline a repeat hop: the
        # unchanged regions were indexed by the serial transfers.
        guest.migration_service.migrate(home, DEMO_PACKAGE)
        repeat = self._migrate(home, guest)
        assert repeat.transfer_chunks_cached > 0
        assert repeat.image_wire_bytes < repeat.image_compressed_bytes
