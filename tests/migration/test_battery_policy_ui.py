"""Battery model, the battery-rescue policy, the target menu, ad-hoc links."""

import pytest

from repro.android.app.intent import ACTION_BATTERY_LOW
from repro.android.hardware.battery import LOW_BATTERY_THRESHOLD, Battery
from repro.core.migration.policies import BatteryRescuePolicy
from repro.core.migration.ui import MenuError, MigrationTargetMenu
from repro.sim import SimClock
from tests.conftest import DEMO_PACKAGE, launch_demo


class TestBattery:
    def test_drains_with_time(self):
        clock = SimClock()
        battery = Battery(clock, level=1.0)
        rate = battery.drain_per_hour()
        clock.advance(3600.0)
        assert battery.level == pytest.approx(1.0 - rate, abs=1e-6)

    def test_loads_increase_drain(self):
        clock = SimClock()
        battery = Battery(clock)
        base = battery.drain_per_hour()
        battery.set_load("gpu", True)
        assert battery.drain_per_hour() > base

    def test_never_below_zero(self):
        clock = SimClock()
        battery = Battery(clock, level=0.01)
        clock.advance(3600.0 * 10)
        assert battery.level == 0.0

    def test_low_callback_fires_once_per_cycle(self):
        clock = SimClock()
        battery = Battery(clock, level=LOW_BATTERY_THRESHOLD + 0.01)
        fired = []
        battery.on_low(fired.append)
        clock.advance(3600.0)
        assert len(fired) == 1
        clock.advance(3600.0)
        assert len(fired) == 1      # latched
        battery.set_level(0.9)      # charged up
        clock.advance(3600.0 * 8)
        assert len(fired) == 2      # new discharge cycle

    def test_bad_level_rejected(self):
        with pytest.raises(ValueError):
            Battery(SimClock(), level=1.5)


class TestBatteryRescuePolicy:
    def _setup(self, device_pair):
        home, guest = device_pair
        thread = launch_demo(home)
        home.pairing_service.pair(guest)
        policy = BatteryRescuePolicy(home, targets=[guest])
        return home, guest, thread, policy

    def test_low_battery_migrates_foreground_app(self, device_pair, clock):
        home, guest, thread, policy = self._setup(device_pair)
        home.battery.set_level(LOW_BATTERY_THRESHOLD + 0.001)
        clock.advance(120.0)       # the periodic check crosses the line
        event = policy.last_event()
        assert event is not None and event.outcome == "migrated"
        assert guest.running_packages() == [DEMO_PACKAGE]
        assert home.running_packages() == []

    def test_app_hears_battery_warning_first(self, device_pair, clock):
        home, guest, thread, policy = self._setup(device_pair)
        warnings = []
        thread.register_receiver(warnings.append, [ACTION_BATTERY_LOW])
        home.battery.set_level(LOW_BATTERY_THRESHOLD - 0.01)
        home.battery._low_fired = False
        clock.advance(60.0)
        assert warnings and warnings[0].action == ACTION_BATTERY_LOW

    def test_low_target_not_chosen(self, device_pair, clock):
        home, guest, thread, policy = self._setup(device_pair)
        guest.battery.set_level(0.05)    # the target is dying too
        home.battery.set_level(LOW_BATTERY_THRESHOLD + 0.001)
        clock.advance(120.0)
        event = policy.last_event()
        assert event.outcome == "no-target"
        assert home.running_packages() == [DEMO_PACKAGE]

    def test_unpaired_target_ignored(self, clock, device_pair):
        home, guest = device_pair
        launch_demo(home)
        policy = BatteryRescuePolicy(home, targets=[guest])  # not paired
        home.battery.set_level(LOW_BATTERY_THRESHOLD + 0.001)
        clock.advance(120.0)
        assert policy.last_event().outcome == "no-target"

    def test_disabled_policy_does_nothing(self, device_pair, clock):
        home, guest, thread, policy = self._setup(device_pair)
        policy.enabled = False
        home.battery.set_level(0.05)
        home.battery._low_fired = False
        clock.advance(120.0)
        assert policy.events == []

    def test_picks_healthiest_target(self, clock):
        from repro.android.device import Device
        from repro.android.hardware.profiles import NEXUS_4, NEXUS_7_2013
        from repro.sim.rng import RngFactory
        factory = RngFactory(51)
        home = Device(NEXUS_4, clock, factory, name="home")
        weak = Device(NEXUS_7_2013, clock, factory, name="weak")
        strong = Device(NEXUS_7_2013, clock, factory, name="strong")
        weak.battery.set_level(0.4)
        strong.battery.set_level(0.9)
        launch_demo(home)
        home.pairing_service.pair(weak)
        home.pairing_service.pair(strong)
        policy = BatteryRescuePolicy(home, targets=[weak, strong])
        assert policy.pick_target() is strong


class TestTargetMenu:
    def test_lists_only_paired_targets(self, device_pair):
        home, guest = device_pair
        menu = MigrationTargetMenu(home, targets=[guest])
        assert menu.entries() == []
        home.pairing_service.pair(guest)
        (entry,) = menu.entries()
        assert entry.model == guest.profile.model
        assert entry.battery_percent == 100

    def test_choosing_advances_decision_time(self, device_pair, clock):
        home, guest = device_pair
        home.pairing_service.pair(guest)
        menu = MigrationTargetMenu(home, targets=[guest])
        before = clock.now
        decision = menu.choose(0, decision_seconds=1.7)
        assert decision.decision_seconds == pytest.approx(1.7)
        assert clock.now == pytest.approx(before + 1.7)
        assert decision.target_name == guest.name

    def test_decision_window_covers_hidden_stages(self, device_pair):
        """§4's accounting: prep + checkpoint fit inside the time the
        user spends on the menu."""
        home, guest = device_pair
        thread = launch_demo(home)
        home.pairing_service.pair(guest)
        menu = MigrationTargetMenu(home, targets=[guest])
        decision = menu.choose(guest.name)
        report = home.migration_service.migrate(
            menu.target_by_name(decision.target_name), DEMO_PACKAGE)
        hidden = report.stages["preparation"] + report.stages["checkpoint"]
        assert hidden < decision.decision_seconds + 1.0

    def test_bad_choices_rejected(self, device_pair):
        home, guest = device_pair
        menu = MigrationTargetMenu(home)
        with pytest.raises(MenuError):
            menu.choose(0)
        home.pairing_service.pair(guest)
        menu.add_target(guest)
        with pytest.raises(MenuError):
            menu.choose(5)
        with pytest.raises(MenuError):
            menu.choose("nonexistent")


class TestAdhocNetworking:
    def test_adhoc_link_is_slower_but_works(self, device_pair):
        from repro.android.net.link import link_between
        home, guest = device_pair
        infra = link_between(home.profile, guest.profile, home.rng_factory)
        adhoc = link_between(home.profile, guest.profile, home.rng_factory,
                             adhoc=True)
        assert adhoc.bandwidth_mbps < infra.bandwidth_mbps
        assert "adhoc" in adhoc.name

    def test_migration_over_adhoc_without_infrastructure(self, device_pair):
        """Disconnected operation (§1): WiFi infrastructure down on both
        devices, migration still succeeds over the ad-hoc link."""
        from repro.android.net.link import link_between
        home, guest = device_pair
        thread = launch_demo(home)
        home.pairing_service.pair(guest)
        # Kill infrastructure connectivity on both sides.
        home.service("wifi").setWifiEnabled(home.system_process, False)
        guest.service("wifi").setWifiEnabled(guest.system_process, False)
        link = link_between(home.profile, guest.profile, home.rng_factory,
                            adhoc=True)
        report = home.migration_service.migrate(guest, DEMO_PACKAGE,
                                                link=link)
        assert report.success
        assert guest.running_packages() == [DEMO_PACKAGE]
        # The slower radio shows up in the transfer stage.
        assert report.stage_fraction("transfer") > 0.4
