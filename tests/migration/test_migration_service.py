"""MigrationService: the five-stage flow, reports, failure recovery."""

import pytest

from repro.android.app.activity import ActivityState
from repro.android.app.notification import Notification
from repro.core.cria.errors import MigrationError, MigrationRefusal
from repro.core.migration.migration import STAGES
from tests.conftest import DEMO_PACKAGE, launch_demo


@pytest.fixture
def migrated(device_pair):
    home, guest = device_pair
    thread = launch_demo(home)
    nm = thread.context.get_system_service("notification")
    nm.notify(1, Notification("carry me"))
    home.pairing_service.pair(guest)
    report = home.migration_service.migrate(guest, DEMO_PACKAGE)
    return home, guest, thread, report


class TestSuccessfulMigration:
    def test_all_stages_timed(self, migrated):
        _, _, _, report = migrated
        assert set(report.stages) == set(STAGES)
        assert all(v > 0 for v in report.stages.values())
        assert report.success
        assert report.total_seconds == pytest.approx(
            sum(report.stages.values()))

    def test_app_runs_on_guest_not_home(self, migrated):
        home, guest, thread, _ = migrated
        assert home.running_packages() == []
        assert guest.running_packages() == [DEMO_PACKAGE]
        assert home.kernel.processes_of_package(DEMO_PACKAGE) == []
        activity = next(iter(thread.activities.values()))
        assert activity.state is ActivityState.RESUMED

    def test_ui_rebuilt_for_guest_screen(self, migrated):
        home, guest, thread, _ = migrated
        activity = next(iter(thread.activities.values()))
        assert activity.window.screen == guest.profile.screen
        assert activity.window.surface.screen == guest.profile.screen
        assert activity.view_root is not None

    def test_service_state_carried(self, migrated):
        home, guest, _, _ = migrated
        snapshot = guest.service("notification").snapshot(DEMO_PACKAGE)
        assert snapshot["active"] == {1: ("carry me", "")}
        # The home side forgot the app's record log.
        assert home.recorder.extract_app_log(DEMO_PACKAGE) == []

    def test_report_sizes_sensible(self, migrated):
        _, _, _, report = migrated
        assert 0 < report.image_compressed_bytes < report.image_raw_bytes
        assert report.transferred_bytes >= report.image_compressed_bytes
        assert report.record_log_entries == 1

    def test_consistency_mark_set(self, migrated):
        home, guest, _, _ = migrated
        record = home.consistency.is_migrated_out(DEMO_PACKAGE)
        assert record is not None
        assert record.guest_name == guest.name

    def test_connectivity_interrupt_delivered(self, device_pair):
        home, guest = device_pair
        thread = launch_demo(home)
        seen = []
        thread.register_receiver(seen.append,
                                 ["android.net.conn.CONNECTIVITY_CHANGE"])
        home.pairing_service.pair(guest)
        home.migration_service.migrate(guest, DEMO_PACKAGE)
        # Loss followed by reconnection, in order (paper §3.1).
        flags = [i.get_extra("connected") for i in seen]
        assert flags[-2:] == [False, True]

    def test_configuration_change_delivered(self, device_pair):
        home, guest = device_pair

        class ConfigAware(
                __import__("tests.conftest", fromlist=["DemoActivity"])
                .DemoActivity):
            configs = []

            def on_configuration_changed(self, config):
                self.configs.append(config)

        thread = launch_demo(home, activity_cls=ConfigAware)
        home.pairing_service.pair(guest)
        home.migration_service.migrate(guest, DEMO_PACKAGE)
        activity = next(iter(thread.activities.values()))
        assert activity.configs
        assert activity.configs[-1]["screen"] == guest.profile.screen


class TestRefusals:
    def test_unpaired_devices(self, device_pair):
        home, guest = device_pair
        launch_demo(home)
        with pytest.raises(MigrationError) as excinfo:
            home.migration_service.migrate(guest, DEMO_PACKAGE)
        assert excinfo.value.reason is MigrationRefusal.NOT_PAIRED

    def test_failed_report_recorded_in_history(self, device_pair):
        home, guest = device_pair
        launch_demo(home)
        with pytest.raises(MigrationError):
            home.migration_service.migrate(guest, DEMO_PACKAGE)
        (report,) = home.migration_service.history
        assert not report.success
        assert report.refusal is MigrationRefusal.NOT_PAIRED

    def test_app_recovers_after_mid_flight_refusal(self, device_pair):
        """A refusal during checkpoint leaves the app usable at home."""
        home, guest = device_pair
        thread = launch_demo(home)
        home.pairing_service.pair(guest)
        # Plant an unmigratable binder connection to a non-system app.
        peer = launch_demo(home, package="com.peer")
        node = home.binder.create_node(peer.process, object(), "peer-svc")
        home.binder.acquire_ref(thread.process, node)
        with pytest.raises(MigrationError) as excinfo:
            home.migration_service.migrate(guest, DEMO_PACKAGE)
        assert excinfo.value.reason is \
            MigrationRefusal.EXTERNAL_BINDER_CONNECTION
        # Recovered: foregrounded again on the home device.
        activity = next(iter(thread.activities.values()))
        assert activity.state is ActivityState.RESUMED
        assert home.running_packages() == sorted([DEMO_PACKAGE, "com.peer"])


class TestMigrateBack:
    def test_round_trip_home(self, migrated):
        home, guest, thread, _ = migrated
        nm = thread.context.get_system_service("notification")
        nm.notify(2, Notification("added on guest"))
        guest.pairing_service.pair(home)
        back = guest.migration_service.migrate(home, DEMO_PACKAGE)
        assert back.success
        assert home.running_packages() == [DEMO_PACKAGE]
        snapshot = home.service("notification").snapshot(DEMO_PACKAGE)
        assert set(snapshot["active"]) == {1, 2}
        # Returning home resolves the consistency mark.
        home.consistency.mark_returned(DEMO_PACKAGE)
        assert home.consistency.is_migrated_out(DEMO_PACKAGE) is None
