"""Placement engine: recorded needs, feasibility, ledger, policies."""

import pytest

from repro.android.hardware.profiles import (
    NEXUS_4,
    NEXUS_4_POCKET,
    NEXUS_5,
    NEXUS_7_2012,
    NEXUS_7_2013,
    NEXUS_7_WALL,
    profile_by_name,
)
from repro.apps.catalog import app_by_package
from repro.core.cria.errors import MigrationRefusal
from repro.core.migration.placement import (
    CandidateView,
    Demand,
    LoadLedger,
    PLACEMENT_POLICIES,
    PlacementError,
    engine_for,
    infeasibility,
    predict_migration_seconds,
    recorded_needs,
)

BUBBLEWITCH = app_by_package("com.king.bubblewitch")
FLAPPYBIRD = app_by_package("com.dotgears.flappybird")
INSTAGRAM = app_by_package("com.instagram.android")
TWITTER = app_by_package("com.twitter.android")


def _view(name, profile, **kwargs):
    return CandidateView(name=name, profile=profile, **kwargs)


class TestRecordedNeeds:
    def test_flappybird_needs_accelerometer_and_vibrator(self):
        needs = recorded_needs(FLAPPYBIRD)
        assert needs.sensor_types == ("accelerometer",)
        assert needs.needs_vibrator
        assert needs.uses_gl

    def test_gl_apps_need_more_screen_than_list_uis(self):
        assert (recorded_needs(BUBBLEWITCH).min_screen_fraction
                > recorded_needs(TWITTER).min_screen_fraction)

    def test_unlisted_app_records_no_service_needs(self):
        needs = recorded_needs(TWITTER)
        assert needs.sensor_types == ()
        assert not needs.needs_location
        assert not needs.needs_vibrator


class TestInfeasibility:
    def test_wall_display_cannot_host_vibrator_apps(self):
        why = infeasibility(recorded_needs(BUBBLEWITCH), NEXUS_4,
                            NEXUS_7_WALL)
        assert why == "no vibrator"

    def test_wall_display_cannot_host_motion_apps(self):
        why = infeasibility(recorded_needs(FLAPPYBIRD), NEXUS_4,
                            NEXUS_7_WALL)
        assert "accelerometer" in why

    def test_wall_display_cannot_host_location_apps(self):
        why = infeasibility(recorded_needs(INSTAGRAM), NEXUS_4,
                            NEXUS_7_WALL)
        assert why == "no location provider"

    def test_pocket_screen_too_small_for_gl_from_large_home(self):
        why = infeasibility(recorded_needs(BUBBLEWITCH), NEXUS_7_2013,
                            NEXUS_4_POCKET)
        assert "screen" in why

    def test_standard_route_is_feasible(self):
        assert infeasibility(recorded_needs(TWITTER), NEXUS_4,
                             NEXUS_7_2013) is None

    def test_home_can_always_host_its_own_apps(self):
        # The fleet demand generator relies on this: a device never
        # demands a package it could not itself launch.
        for profile in (NEXUS_4, NEXUS_7_2013, NEXUS_7_WALL,
                        NEXUS_4_POCKET):
            for app in (TWITTER, BUBBLEWITCH, FLAPPYBIRD, INSTAGRAM):
                why = infeasibility(recorded_needs(app), profile, profile)
                if why is not None:
                    # infeasible at home -> the generator filters it out;
                    # the screen check must never be the reason (1.0x).
                    assert "screen" not in why


class TestPrediction:
    def test_prediction_stages_positive_and_sum(self):
        prediction = predict_migration_seconds(TWITTER, NEXUS_4,
                                               NEXUS_7_2013)
        for stage in ("preparation", "checkpoint", "transfer", "restore",
                      "reintegration"):
            assert prediction[stage] > 0.0
        assert prediction["total"] == pytest.approx(
            sum(v for k, v in prediction.items() if k != "total"))

    def test_contending_flows_dilate_the_transfer_only(self):
        solo = predict_migration_seconds(TWITTER, NEXUS_4, NEXUS_7_2013)
        contended = predict_migration_seconds(TWITTER, NEXUS_4,
                                              NEXUS_7_2013,
                                              active_flows=2)
        assert contended["transfer"] > solo["transfer"]
        assert contended["restore"] == solo["restore"]

    def test_slow_link_predicts_slower_transfer(self):
        fast = predict_migration_seconds(TWITTER, NEXUS_5, NEXUS_7_2013)
        slow = predict_migration_seconds(TWITTER, NEXUS_5, NEXUS_7_2012)
        assert slow["transfer"] > fast["transfer"]


class TestLoadLedger:
    def test_fresh_ledger_shows_idle_devices(self):
        view = LoadLedger().view("a", NEXUS_4, now=5.0)
        assert view.queue_depth == 0
        assert view.held_seconds == 0.0
        assert view.queue_wait_s == 0.0
        assert view.active_flows == 0

    def test_commit_projects_windows_on_both_endpoints(self):
        ledger = LoadLedger()
        prediction = {"preparation": 1.0, "checkpoint": 1.0,
                      "transfer": 4.0, "restore": 1.0,
                      "reintegration": 1.0, "total": 8.0}
        start, end = ledger.commit("a", "b", now=0.0,
                                   prediction=prediction)
        assert (start, end) == (0.0, 8.0)
        for device in ("a", "b"):
            view = ledger.view(device, NEXUS_4, now=4.0)
            assert view.queue_depth == 1
            assert view.held_seconds == pytest.approx(4.0)
            assert view.queue_wait_s == pytest.approx(4.0)

    def test_second_commit_serializes_behind_the_first(self):
        ledger = LoadLedger()
        prediction = {"preparation": 1.0, "checkpoint": 1.0,
                      "transfer": 4.0, "restore": 1.0,
                      "reintegration": 1.0, "total": 8.0}
        ledger.commit("a", "b", now=0.0, prediction=prediction)
        start, end = ledger.commit("b", "c", now=2.0,
                                   prediction=prediction)
        assert start == pytest.approx(8.0)
        assert end == pytest.approx(16.0)

    def test_transfer_window_counts_as_an_active_flow(self):
        ledger = LoadLedger()
        prediction = {"preparation": 1.0, "checkpoint": 1.0,
                      "transfer": 4.0, "restore": 1.0,
                      "reintegration": 1.0, "total": 8.0}
        ledger.commit("a", "b", now=0.0, prediction=prediction)
        # Transfer projected on [2.0, 6.0).
        assert ledger.view("c", NEXUS_4, now=3.0).active_flows == 1
        assert ledger.view("c", NEXUS_4, now=7.0).active_flows == 0


class TestEngines:
    DEMAND = Demand(arrival=0.0, home="home", package=TWITTER.package)

    def test_every_policy_resolves(self):
        for policy in PLACEMENT_POLICIES:
            assert engine_for(policy).name == policy

    def test_unknown_policy_raises(self):
        with pytest.raises(PlacementError, match="unknown placement"):
            engine_for("round-robin")

    def test_no_feasible_guest_refusal_names_every_reason(self):
        home = _view("home", NEXUS_7_2013)
        candidates = [_view("wall", NEXUS_7_WALL),
                      _view("pocket", NEXUS_4_POCKET)]
        decision = engine_for("capability").choose(
            Demand(0.0, "home", BUBBLEWITCH.package), BUBBLEWITCH,
            home, candidates)
        assert decision.guest is None
        assert decision.refusal is MigrationRefusal.NO_FEASIBLE_GUEST
        assert "wall: no vibrator" in decision.detail
        assert "pocket: screen" in decision.detail

    def test_capability_prefers_the_largest_screen(self):
        home = _view("home", NEXUS_4)
        candidates = [_view("small", NEXUS_4_POCKET),
                      _view("big", NEXUS_7_2013)]
        decision = engine_for("capability").choose(
            self.DEMAND, TWITTER, home, candidates)
        assert decision.guest == "big"
        assert decision.runner_up == "small"

    def test_least_loaded_prefers_the_idle_device(self):
        home = _view("home", NEXUS_4)
        candidates = [_view("busy", NEXUS_7_2013, queue_depth=2,
                            held_seconds=30.0),
                      _view("idle", NEXUS_7_2012)]
        decision = engine_for("least-loaded").choose(
            self.DEMAND, TWITTER, home, candidates)
        assert decision.guest == "idle"

    def test_cost_model_trades_queue_against_link_speed(self):
        # An idle device on a slow radio vs a briefly-busy device on a
        # fast one: least-loaded picks the idle one, the cost model
        # picks the fast one once the wait is shorter than the saved
        # transfer time.
        home = _view("home", NEXUS_5)
        slow_idle = _view("slow", NEXUS_7_2012)
        fast_busy = _view("fast", NEXUS_5, queue_depth=1,
                          queue_wait_s=2.0, held_seconds=2.0)
        loaded = engine_for("least-loaded").choose(
            self.DEMAND, TWITTER, home, [slow_idle, fast_busy])
        cost = engine_for("cost-model").choose(
            self.DEMAND, TWITTER, home, [slow_idle, fast_busy])
        assert loaded.guest == "slow"
        assert cost.guest == "fast"
        assert cost.predicted_s is not None

    def test_choose_is_deterministic(self):
        home = _view("home", NEXUS_4)
        candidates = [_view("a", NEXUS_7_2013), _view("b", NEXUS_7_2012),
                      _view("c", NEXUS_5)]
        for policy in PLACEMENT_POLICIES:
            engine = engine_for(policy)
            first = engine.choose(self.DEMAND, TWITTER, home, candidates)
            again = engine.choose(self.DEMAND, TWITTER, home, candidates)
            assert first == again

    def test_decision_attrs_are_json_able_pairs(self):
        import json
        home = _view("home", NEXUS_4)
        decision = engine_for("cost-model").choose(
            self.DEMAND, TWITTER, home, [_view("a", NEXUS_7_2013)])
        attrs = dict(decision.attrs())
        json.dumps(attrs)
        assert attrs["policy"] == "cost-model"
        assert attrs["guest"] == "a"
        assert attrs["feasible"] == 1


def test_fleet_profiles_resolve_by_name():
    assert profile_by_name("nexus7_wall") is NEXUS_7_WALL
    assert profile_by_name("nexus4_pocket") is NEXUS_4_POCKET
    assert not NEXUS_7_WALL.has_vibrator
    assert NEXUS_7_WALL.location_providers == ()
    assert NEXUS_4_POCKET.screen.pixels < NEXUS_4.screen.pixels
