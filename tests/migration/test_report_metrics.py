"""MigrationReport derived metrics on empty, partial, and failed reports.

The experiment harness leans on these properties (Figures 12-15), so
they must degrade sanely for reports that never completed — refused
before the pipeline ran (empty stage dict) or faulted mid-pipeline
(partial stage dict).
"""

import pytest

from repro.core.cria.errors import MigrationRefusal
from repro.core.migration.migration import MigrationReport


def report(**kwargs) -> MigrationReport:
    return MigrationReport(package="p", home="h", guest="g", **kwargs)


class TestEmptyReport:
    """A refusal before the pipeline: no stages ever ran."""

    def test_all_times_zero(self):
        r = report()
        assert r.total_seconds == 0.0
        assert r.perceived_seconds == 0.0
        assert r.non_transfer_seconds == 0.0
        assert r.interaction_seconds == 0.0

    def test_stage_fraction_avoids_division_by_zero(self):
        assert report().stage_fraction("transfer") == 0.0

    def test_byte_counters_zero(self):
        r = report()
        assert r.transferred_bytes == 0
        assert r.chunk_hit_rate == 0.0


class TestPartialReport:
    """A pipeline fault: completed stages plus the faulted stage."""

    def test_times_cover_only_recorded_stages(self):
        r = report(stages={"preparation": 2.0, "checkpoint": 1.0,
                           "transfer": 4.0},
                   faulted_stage="transfer",
                   refusal=MigrationRefusal.LINK_DOWN)
        assert r.total_seconds == pytest.approx(7.0)
        # Preparation + checkpoint hide behind the target menu.
        assert r.perceived_seconds == pytest.approx(4.0)
        assert r.non_transfer_seconds == pytest.approx(0.0)
        assert r.interaction_seconds == r.non_transfer_seconds

    def test_missing_stages_read_as_zero(self):
        r = report(stages={"transfer": 4.0})
        assert r.perceived_seconds == pytest.approx(4.0)
        assert r.stage_fraction("restore") == 0.0
        assert r.stage_fraction("transfer") == pytest.approx(1.0)

    def test_failed_flags_preserved(self):
        r = report(stages={"preparation": 2.0}, faulted_stage="preparation",
                   refusal=MigrationRefusal.PRESERVED_EGL_CONTEXT)
        assert not r.success
        assert r.faulted_stage == "preparation"


class TestFullReport:
    STAGES = {"preparation": 1.0, "checkpoint": 2.0, "transfer": 8.0,
              "restore": 3.0, "reintegration": 2.0}

    def test_perceived_excludes_menu_hidden_stages(self):
        r = report(stages=dict(self.STAGES))
        assert r.total_seconds == pytest.approx(16.0)
        assert r.perceived_seconds == pytest.approx(13.0)
        assert r.non_transfer_seconds == pytest.approx(5.0)
        assert r.interaction_seconds == pytest.approx(5.0)

    def test_stage_fractions_sum_to_one(self):
        r = report(stages=dict(self.STAGES))
        assert sum(r.stage_fraction(s) for s in self.STAGES) \
            == pytest.approx(1.0)

    def test_transferred_bytes_prefers_wire_count(self):
        r = report(image_compressed_bytes=1000, data_delta_bytes=10)
        assert r.transferred_bytes == 1010      # serial: full image
        r.image_wire_bytes = 400
        assert r.transferred_bytes == 410       # pipelined: cache hits

    def test_chunk_hit_rate(self):
        r = report(transfer_chunks_total=8, transfer_chunks_cached=2)
        assert r.chunk_hit_rate == pytest.approx(0.25)
