"""Pairing: framework sync, wrapper installs, verification."""

import pytest

from repro.core.cria.errors import MigrationError, MigrationRefusal
from repro.core.migration.pairing import flux_root
from repro.sim import units
from tests.conftest import DEMO_PACKAGE, install_demo, launch_demo


class TestFrameworkSync:
    def test_paper_pairing_numbers(self, device_pair):
        home, guest = device_pair
        report = home.pairing_service.pair(guest)
        assert report.constant_bytes_total == units.mb(215)
        assert report.constant_bytes_after_linking == units.mb(123)
        # 123 MB delta compressed at the calibrated ratio lands on 56 MB.
        assert report.constant_bytes_compressed == pytest.approx(
            units.mb(56), rel=0.02)

    def test_pairing_is_symmetricly_recorded(self, device_pair):
        home, guest = device_pair
        home.pairing_service.pair(guest)
        assert home.pairing_service.is_paired_with(guest.name)
        assert guest.pairing_service.is_paired_with(home.name)

    def test_synced_files_land_in_flux_root(self, device_pair):
        home, guest = device_pair
        home.pairing_service.pair(guest)
        root = flux_root(home.name)
        assert guest.storage.file_count(f"{root}/system") > 0
        # Hard links cost no physical bytes for the common files.
        assert guest.storage.unique_bytes(f"{root}/system") == \
            units.mb(123)

    def test_pairing_takes_time(self, device_pair, clock):
        home, guest = device_pair
        report = home.pairing_service.pair(guest)
        assert report.seconds > 0
        assert clock.now >= report.seconds


class TestAppPairing:
    def test_apps_pseudo_installed_on_guest(self, device_pair):
        home, guest = device_pair
        install_demo(home)
        report = home.pairing_service.pair(guest)
        assert [a.package for a in report.apps] == [DEMO_PACKAGE]
        assert guest.package_service.is_pseudo(DEMO_PACKAGE)
        info = guest.package_service.get_package(DEMO_PACKAGE)
        assert info.version_code == 7

    def test_pseudo_install_does_not_copy_apk_to_app_dir(self, device_pair):
        home, guest = device_pair
        install_demo(home)
        home.pairing_service.pair(guest)
        # The APK lives in the flux area, not as a native install.
        assert not guest.storage.exists(f"/data/app/{DEMO_PACKAGE}.apk")
        assert guest.storage.exists(
            f"{flux_root(home.name)}/app/{DEMO_PACKAGE}.apk")

    def test_native_install_blocks_pseudo(self, device_pair):
        home, guest = device_pair
        install_demo(home)
        install_demo(guest)     # natively installed on the guest too
        report = home.pairing_service.pair(guest)
        # The guest keeps its native install; no wrapper is created.
        assert [a.package for a in report.apps] == [DEMO_PACKAGE]
        assert not guest.package_service.is_pseudo(DEMO_PACKAGE)

    def test_api_level_incompatible_app_reported(self, device_pair):
        home, guest = device_pair
        install_demo(home, "com.future", api_level=99)
        report = home.pairing_service.pair(guest)
        assert report.incompatible == ["com.future"]
        assert not guest.package_service.is_installed("com.future")


class TestVerification:
    def test_verify_unpaired_rejected(self, device_pair):
        home, guest = device_pair
        with pytest.raises(MigrationError) as excinfo:
            home.pairing_service.verify_app(guest, DEMO_PACKAGE)
        assert excinfo.value.reason is MigrationRefusal.NOT_PAIRED

    def test_verify_moves_nothing_when_clean(self, device_pair):
        home, guest = device_pair
        install_demo(home)
        home.pairing_service.pair(guest)
        assert home.pairing_service.verify_app(guest, DEMO_PACKAGE) == 0

    def test_verify_syncs_updated_apk(self, device_pair):
        home, guest = device_pair
        apk = install_demo(home)
        home.pairing_service.pair(guest)
        newer = apk.bump_version()
        home.storage.remove(newer.install_path)
        home.install_app(newer, data_bytes=0)
        delta = home.pairing_service.verify_app(guest, DEMO_PACKAGE)
        assert delta > 0
        assert guest.package_service.get_package(
            DEMO_PACKAGE).version_code == newer.version_code

    def test_verify_syncs_dirty_data_dir(self, device_pair):
        home, guest = device_pair
        install_demo(home)
        home.pairing_service.pair(guest)
        prefs = f"/data/data/{DEMO_PACKAGE}/shared_prefs/prefs.xml"
        home.storage.remove(prefs)
        home.storage.add_file(prefs, units.kb(64),
                              f"{DEMO_PACKAGE}/data/prefs/changed")
        delta = home.pairing_service.verify_app(guest, DEMO_PACKAGE)
        assert 0 < delta < units.kb(200)
