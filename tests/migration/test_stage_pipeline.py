"""Stage pipeline: fault injection, rollback atomicity, resume on retry.

The atomicity contract under test: a fault at any stage leaves the app
running (thawed, foregrounded) on the home device, the guest holding no
partial process state, and the record log intact — while what
legitimately survives as *cache* (synced deltas, received chunks) makes
a retry cheaper than the first attempt.
"""

import pytest

from repro.android.app.activity import ActivityState
from repro.android.app.notification import Notification
from repro.android.net.link import LinkFaultPlan, link_between
from repro.core.cria.errors import MigrationError, MigrationRefusal
from repro.core.cria.restore import RestoreFaultPlan
from repro.core.extensions import FluxExtensions
from repro.core.migration.migration import STAGES, MigrationReport
from repro.core.migration.stages import (
    MigrationContext,
    Stage,
    StagePipeline,
    default_stages,
)
from repro.sim import units
from tests.conftest import DEMO_PACKAGE, launch_demo


PIPELINED = FluxExtensions(pipelined_transfer=True)


@pytest.fixture
def paired(device_pair):
    home, guest = device_pair
    thread = launch_demo(home)
    nm = thread.context.get_system_service("notification")
    nm.notify(1, Notification("survive me"))
    home.pairing_service.pair(guest)
    return home, guest, thread


def armed_link(home, guest, drop_after_bytes=None, drop_after_transfers=None):
    link = link_between(home.profile, guest.profile, home.rng_factory)
    link.inject_fault(LinkFaultPlan(drop_after_bytes=drop_after_bytes,
                                    drop_after_transfers=drop_after_transfers))
    return link


class TestLinkFaultRollback:
    def drop_mid_transfer(self, home, guest, extensions=None):
        """Drop the link 1 MB in — past the deltas, inside the image."""
        link = armed_link(home, guest, drop_after_bytes=units.mb(1))
        with pytest.raises(MigrationError) as exc:
            home.migration_service.migrate(
                guest, DEMO_PACKAGE, link=link,
                extensions=extensions or FluxExtensions.none())
        assert exc.value.reason is MigrationRefusal.LINK_DOWN
        return home.migration_service.history[-1]

    def test_home_keeps_running_app(self, paired):
        home, guest, thread = paired
        self.drop_mid_transfer(home, guest)
        assert home.running_packages() == [DEMO_PACKAGE]
        assert thread.process.state.value != "frozen"
        activity = next(iter(thread.activities.values()))
        assert activity.state is ActivityState.RESUMED

    def test_guest_holds_no_partial_state(self, paired):
        home, guest, _ = paired
        self.drop_mid_transfer(home, guest)
        assert guest.kernel.processes_of_package(DEMO_PACKAGE) == []
        assert guest.running_packages() == []

    def test_failed_report_records_faulted_stage(self, paired):
        home, guest, _ = paired
        report = self.drop_mid_transfer(home, guest)
        assert not report.success
        assert report.faulted_stage == "transfer"
        assert report.refusal is MigrationRefusal.LINK_DOWN
        # Completed stages plus the faulted stage's partial duration.
        assert set(report.stages) == {"preparation", "checkpoint",
                                      "transfer"}
        assert all(v > 0 for v in report.stages.values())
        # Only the bytes delivered before the drop are accounted.
        assert report.image_wire_bytes < report.image_compressed_bytes

    def test_record_log_survives_rollback(self, paired):
        home, guest, _ = paired
        self.drop_mid_transfer(home, guest)
        log = home.recorder.extract_app_log(DEMO_PACKAGE)
        assert len(log) >= 1

    def test_no_consistency_mark_after_rollback(self, paired):
        home, guest, _ = paired
        self.drop_mid_transfer(home, guest)
        assert home.consistency.is_migrated_out(DEMO_PACKAGE) is None

    def test_retry_over_healthy_link_succeeds(self, paired):
        home, guest, _ = paired
        self.drop_mid_transfer(home, guest)
        report = home.migration_service.migrate(guest, DEMO_PACKAGE)
        assert report.success
        assert guest.running_packages() == [DEMO_PACKAGE]
        assert home.running_packages() == []

    def test_drop_after_transfers_faults_too(self, paired):
        home, guest, _ = paired
        # The serial path's single image+delta send is transfer 0; it
        # dies on departure, delivering nothing.
        link = armed_link(home, guest, drop_after_transfers=0)
        with pytest.raises(MigrationError) as exc:
            home.migration_service.migrate(guest, DEMO_PACKAGE, link=link)
        assert exc.value.reason is MigrationRefusal.LINK_DOWN
        assert home.migration_service.history[-1].image_wire_bytes == 0
        assert home.running_packages() == [DEMO_PACKAGE]


class TestResumeOnRetry:
    def test_pipelined_fault_seeds_chunk_store(self, paired):
        home, guest, _ = paired
        link = armed_link(home, guest, drop_after_bytes=units.mb(1))
        with pytest.raises(MigrationError):
            home.migration_service.migrate(guest, DEMO_PACKAGE, link=link,
                                           extensions=PIPELINED)
        # The fully-delivered prefix entered the guest's store (cache,
        # not app state — the rollback invariant holds separately).
        assert len(guest.chunk_store) > 0
        assert guest.kernel.processes_of_package(DEMO_PACKAGE) == []

    def test_pipelined_retry_resumes(self, paired):
        home, guest, _ = paired
        link = armed_link(home, guest, drop_after_bytes=units.mb(1))
        with pytest.raises(MigrationError):
            home.migration_service.migrate(guest, DEMO_PACKAGE, link=link,
                                           extensions=PIPELINED)
        retry = home.migration_service.migrate(guest, DEMO_PACKAGE,
                                               extensions=PIPELINED)
        assert retry.success
        # The resume signal: chunks delivered before the drop hit the
        # guest's cache, so strictly fewer image bytes travel than the
        # image the retry is moving.
        assert retry.transfer_chunks_cached > 0
        assert retry.chunk_bytes_cached > 0
        assert retry.image_wire_bytes < retry.image_compressed_bytes

    def test_serial_retry_has_no_resume(self, paired):
        home, guest, _ = paired
        link = armed_link(home, guest, drop_after_bytes=units.mb(1))
        with pytest.raises(MigrationError):
            home.migration_service.migrate(guest, DEMO_PACKAGE, link=link)
        retry = home.migration_service.migrate(guest, DEMO_PACKAGE)
        assert retry.success
        assert retry.transfer_chunks_cached == 0
        assert retry.image_wire_bytes == retry.image_compressed_bytes


class TestRestoreFaultRollback:
    @pytest.mark.parametrize("steps", [0, 2, 5])
    def test_rollback_at_every_probe_point(self, paired, steps):
        home, guest, thread = paired
        with pytest.raises(MigrationError) as exc:
            home.migration_service.migrate(
                guest, DEMO_PACKAGE,
                restore_fault=RestoreFaultPlan(fail_after_steps=steps))
        assert exc.value.reason is MigrationRefusal.RESTORE_FAILED
        report = home.migration_service.history[-1]
        assert report.faulted_stage == "restore"
        assert guest.kernel.processes_of_package(DEMO_PACKAGE) == []
        assert home.running_packages() == [DEMO_PACKAGE]
        assert thread.process.state.value != "frozen"

    def test_retry_after_restore_fault(self, paired):
        home, guest, _ = paired
        with pytest.raises(MigrationError):
            home.migration_service.migrate(
                guest, DEMO_PACKAGE,
                restore_fault=RestoreFaultPlan(fail_after_steps=1))
        report = home.migration_service.migrate(guest, DEMO_PACKAGE)
        assert report.success
        assert guest.running_packages() == [DEMO_PACKAGE]

    def test_plan_validates(self):
        with pytest.raises(ValueError):
            RestoreFaultPlan(fail_after_steps=-1)


class _Boom(Stage):
    name = "boom"

    def run(self, ctx):
        raise RuntimeError("kaboom")


class _Flaky(Stage):
    name = "flaky"

    def __init__(self):
        self.rolled_back = False

    def run(self, ctx):
        pass

    def rollback(self, ctx):
        self.rolled_back = True
        raise ValueError("compensation bug")


class TestPipelineMechanics:
    def test_default_stage_order_matches_figure_13(self):
        assert [s.name for s in default_stages()] == list(STAGES)

    def _context(self, device_pair):
        home, guest = device_pair
        report = MigrationReport(package="p", home=home.name,
                                 guest=guest.name)
        return home, MigrationContext(
            home=home, guest=guest, package="p", link=None, report=report,
            extensions=FluxExtensions.none())

    def test_rollback_failure_never_masks_fault(self, device_pair):
        home, ctx = self._context(device_pair)
        flaky = _Flaky()
        with pytest.raises(RuntimeError, match="kaboom"):
            StagePipeline([flaky, _Boom()]).run(ctx)
        assert flaky.rolled_back
        errors = home.tracer.events("migration", "rollback-error")
        assert len(errors) == 1 and errors[0].detail["stage"] == "flaky"
        assert ctx.report.faulted_stage == "boom"

    def test_rollback_order_faulted_first_then_reverse(self, device_pair):
        _, ctx = self._context(device_pair)
        order = []

        def witness(name):
            stage = Stage()
            stage.name = name
            stage.run = lambda c: None
            stage.rollback = lambda c: order.append(name)
            return stage

        boom = _Boom()
        boom.rollback = lambda c: order.append("boom")
        with pytest.raises(RuntimeError):
            StagePipeline([witness("a"), witness("b"), boom]).run(ctx)
        assert order == ["boom", "b", "a"]

    def test_faulted_stage_still_timed(self, device_pair):
        home, ctx = self._context(device_pair)

        slow = Stage()
        slow.name = "slow"

        def run(c):
            home.clock.advance(2.5)
            raise RuntimeError("late fault")

        slow.run = run
        with pytest.raises(RuntimeError):
            StagePipeline([slow]).run(ctx)
        assert ctx.report.stages["slow"] == pytest.approx(2.5)
