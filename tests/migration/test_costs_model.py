"""The stage-cost model: scaling properties the calibration relies on."""

import pytest
from hypothesis import given, strategies as st

from repro.core.migration import costs
from repro.sim import units


class TestCostFunctions:
    def test_preparation_scales_with_ui_complexity(self):
        small = costs.preparation_cost(5, 0, 1.0)
        big = costs.preparation_cost(50, 2, 1.0)
        assert big > small

    def test_slower_cpu_costs_more(self):
        for fn, args in (
                (costs.preparation_cost, (10, 1)),
                (costs.checkpoint_cost, (units.mb(8),)),
                (costs.restore_cost, (units.mb(8),)),
                (costs.reintegration_cost, (5,)),
                (costs.pairing_scan_cost, (800,))):
            fast = fn(*args, 1.2)
            slow = fn(*args, 0.6)
            assert slow == pytest.approx(2 * fast)

    def test_checkpoint_linear_in_bytes(self):
        base = costs.checkpoint_cost(0, 1.0)
        one = costs.checkpoint_cost(units.mb(10), 1.0) - base
        two = costs.checkpoint_cost(units.mb(20), 1.0) - base
        assert two == pytest.approx(2 * one)

    def test_restore_faster_than_checkpoint_per_byte(self):
        """Decompress+inject beats serialize+compress, so restore's
        variable cost is below checkpoint's for the same image."""
        image = units.mb(12)
        checkpoint_var = costs.checkpoint_cost(image, 1.0) \
            - costs.checkpoint_cost(0, 1.0)
        restore_var = costs.restore_cost(image, 1.0) \
            - costs.restore_cost(0, 1.0)
        assert restore_var < checkpoint_var

    @given(st.integers(0, 10**8), st.floats(0.3, 2.0))
    def test_costs_always_positive_and_finite(self, image_bytes, cpu):
        for value in (costs.checkpoint_cost(image_bytes, cpu),
                      costs.restore_cost(image_bytes, cpu),
                      costs.reintegration_cost(image_bytes % 100, cpu),
                      costs.preparation_cost(image_bytes % 200, 2, cpu)):
            assert 0 < value < 1e6


class TestGlReplayEdges:
    def test_empty_capture_when_nothing_preserved(self, demo_thread):
        from repro.core.glreplay import capture_and_release
        capture = capture_and_release(demo_thread)
        assert capture.is_empty()
        assert capture.total_bytes() == 0

    def test_replay_with_no_matching_views_uploads_nothing(self,
                                                           demo_thread):
        from repro.core.glreplay import (
            GlStateCapture,
            GlViewState,
            replay_capture,
        )
        capture = GlStateCapture(package=demo_thread.package, views=[
            GlViewState(view_name="ghost", texture_bytes=1,
                        preserve_flag=True, resources=())])
        assert replay_capture(demo_thread, capture) == 0


class TestDescribeValueEdges:
    def test_nested_structures(self):
        from repro.core.cria.wire import _describe_value
        value = {"a": [1, (2, b"\x01")], "b": {"c": None}}
        described = _describe_value(value)
        assert described["a"][1][1] == {"__bytes__": "01"}
        assert described["b"]["c"] is None

    def test_non_string_keys_coerced(self):
        from repro.core.cria.wire import _describe_value
        import json
        json.dumps(_describe_value({3: "x", (1, 2): "y"}))
