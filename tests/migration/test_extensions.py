"""The §3.4 extension sketches, implemented behind FluxExtensions flags.

Each test proves two things: the default behaviour still refuses
(prototype fidelity), and the extension lifts the refusal with correct
semantics.
"""

import pytest

from repro.android.app.notification import Notification
from repro.android.kernel.files import NetworkFile, OpenFile
from repro.core.cria.errors import MigrationError, MigrationRefusal
from repro.core.extensions import FluxExtensions
from tests.conftest import DEMO_PACKAGE, DemoActivity, launch_demo


class TestMultiProcess:
    """Paper §3.4: 'CRIU already supports checkpointing an entire
    process tree' — the Facebook refusal, lifted."""

    def _launch_multi(self, home):
        from tests.conftest import install_demo
        install_demo(home, "com.multi")
        return home.launch_app("com.multi", DemoActivity, extra_processes=2)

    def test_default_still_refuses(self, device_pair):
        home, guest = device_pair
        self._launch_multi(home)
        home.pairing_service.pair(guest)
        with pytest.raises(MigrationError) as excinfo:
            home.migration_service.migrate(guest, "com.multi")
        assert excinfo.value.reason is MigrationRefusal.MULTI_PROCESS

    def test_extension_migrates_whole_tree(self, device_pair):
        home, guest = device_pair
        thread = self._launch_multi(home)
        home.pairing_service.pair(guest)
        ext = FluxExtensions(multi_process=True)
        report = home.migration_service.migrate(guest, "com.multi",
                                                extensions=ext)
        assert report.success
        guest_procs = guest.kernel.processes_of_package("com.multi")
        assert len(guest_procs) == 3
        assert home.kernel.processes_of_package("com.multi") == []
        # All processes are alive and share the namespace.
        names = sorted(p.name for p in guest_procs)
        assert names == ["com.multi:main", "com.multi:proc1",
                         "com.multi:proc2"]

    def test_facebook_migrates_with_extension(self, device_pair):
        from repro.apps.social import FACEBOOK
        home, guest = device_pair
        FACEBOOK.install_and_launch(home)
        home.pairing_service.pair(guest)
        ext = FluxExtensions(multi_process=True)
        report = home.migration_service.migrate(guest, FACEBOOK.package,
                                                extensions=ext)
        assert report.success
        snapshot = guest.service("notification").snapshot(FACEBOOK.package)
        assert 11 in snapshot["active"]


class TestGlRecordReplay:
    """Paper §3.4 cites record-prune-replay of GL state [30] as the fix
    for preserved EGL contexts — the Subway Surfers refusal, lifted."""

    def _launch_subway(self, home):
        from repro.apps.games import SUBWAY_SURFERS
        return SUBWAY_SURFERS, SUBWAY_SURFERS.install_and_launch(home)

    def test_default_still_refuses(self, device_pair):
        home, guest = device_pair
        spec, _ = self._launch_subway(home)
        home.pairing_service.pair(guest)
        with pytest.raises(MigrationError) as excinfo:
            home.migration_service.migrate(guest, spec.package)
        assert excinfo.value.reason is \
            MigrationRefusal.PRESERVED_EGL_CONTEXT

    def test_extension_migrates_with_gl_state(self, device_pair):
        home, guest = device_pair
        spec, thread = self._launch_subway(home)
        home.pairing_service.pair(guest)
        ext = FluxExtensions(gl_record_replay=True)
        report = home.migration_service.migrate(guest, spec.package,
                                                extensions=ext)
        assert report.success
        activity = next(iter(thread.activities.values()))
        gl_views = activity.view_root.gl_surface_views()
        assert gl_views
        assert all(v.has_live_context for v in gl_views)
        assert all(v.preserve_egl_context_on_pause for v in gl_views)
        # The context now lives on the guest's vendor library.
        assert guest.vendor_gl.live_context_count(thread.process.pid) >= 1
        replayed = guest.tracer.events("glreplay", "replayed")
        assert replayed and replayed[0].detail["bytes"] > 0
        assert activity.saved_state["coins"] == 2210

    def test_capture_prunes_deleted_resources(self, device):
        """Only live resources are recorded (the 'prune' of [30])."""
        from repro.core.glreplay import capture_and_release
        from repro.android.app.views import GLSurfaceView, ViewGroup

        class Game(DemoActivity):
            def on_create(self, saved_state):
                root = ViewGroup("root")
                view = GLSurfaceView("game", texture_bytes=1024)
                view.attach_gl(self.thread.framework.gl,
                               self.thread.process)
                view.set_preserve_egl_context_on_pause(True)
                view.on_resume_gl()
                root.add_view(view)
                self.set_content_view(root)

        thread = launch_demo(device, package="com.game", activity_cls=Game)
        activity = next(iter(thread.activities.values()))
        (gl_view,) = activity.view_root.gl_surface_views()
        kept = gl_view._context.create_resource("texture", 4096)
        doomed = gl_view._context.create_resource("buffer", 9999)
        gl_view._context.delete_resource(doomed.res_id)

        capture = capture_and_release(thread)
        (view_state,) = capture.views
        sizes = sorted(r.size for r in view_state.resources)
        assert 9999 not in sizes          # deleted resource pruned
        assert 4096 in sizes and 1024 in sizes
        assert not gl_view.has_live_context   # released for checkpoint


class TestContentProviderReplay:
    """Paper §3.4: provider connections are short-lived Binder services;
    record/replay can re-establish them."""

    def _setup(self, device_pair):
        home, guest = device_pair
        thread = launch_demo(home)
        provider_home = launch_demo(home, package="com.provider")
        provider_home.publish_provider("contacts")
        # The provider app also runs on the guest (shared data there).
        provider_guest = launch_demo(guest, package="com.provider")
        provider_guest.publish_provider("contacts")
        am = thread.context.get_system_service("activity")
        am.getContentProvider("contacts")
        home.pairing_service.pair(guest)
        return home, guest, thread

    def test_default_still_refuses(self, device_pair):
        home, guest, thread = self._setup(device_pair)
        with pytest.raises(MigrationError) as excinfo:
            home.migration_service.migrate(guest, DEMO_PACKAGE)
        assert excinfo.value.reason is \
            MigrationRefusal.ACTIVE_CONTENT_PROVIDER

    def test_extension_reestablishes_connection(self, device_pair):
        home, guest, thread = self._setup(device_pair)
        ext = FluxExtensions(content_provider_replay=True)
        report = home.migration_service.migrate(guest, DEMO_PACKAGE,
                                                extensions=ext)
        assert report.success
        connections = guest.activity_service.provider_connections_of(
            DEMO_PACKAGE)
        assert [c.authority for c in connections] == ["contacts"]

    def test_finished_interaction_leaves_no_replay(self, device_pair):
        """get + remove annihilate in the log; nothing re-establishes."""
        home, guest, thread = self._setup(device_pair)
        am = thread.context.get_system_service("activity")
        am.removeContentProvider("contacts")
        report = home.migration_service.migrate(guest, DEMO_PACKAGE)
        assert report.success
        assert guest.activity_service.provider_connections_of(
            DEMO_PACKAGE) == []


class TestSdcardNetworkMount:
    """Paper §3.4: 'mount the home device's common SD card data as a
    network file system prior to restoring'."""

    def _setup(self, device_pair):
        home, guest = device_pair
        thread = launch_demo(home)
        home.storage.add_file("/sdcard/DCIM/photo.jpg", 4096, "photo")
        thread.process.fds.install(OpenFile("/sdcard/DCIM/photo.jpg",
                                            offset=128))
        home.pairing_service.pair(guest)
        return home, guest, thread

    def test_default_still_refuses(self, device_pair):
        home, guest, thread = self._setup(device_pair)
        with pytest.raises(MigrationError) as excinfo:
            home.migration_service.migrate(guest, DEMO_PACKAGE)
        assert excinfo.value.reason is MigrationRefusal.COMMON_SDCARD_FILES

    def test_extension_converts_fd_to_network_mount(self, device_pair):
        home, guest, thread = self._setup(device_pair)
        ext = FluxExtensions(sdcard_network_mount=True)
        report = home.migration_service.migrate(guest, DEMO_PACKAGE,
                                                extensions=ext)
        assert report.success
        network_fds = thread.process.fds.find(
            lambda o: isinstance(o, NetworkFile))
        assert len(network_fds) == 1
        mounted = network_fds[0].obj
        assert mounted.path == "/sdcard/DCIM/photo.jpg"
        assert mounted.host == home.name
        assert mounted.offset == 128   # file position survived

    def test_remote_reads_pay_the_network(self, device_pair, clock):
        from repro.android.net.link import link_between
        home, guest, thread = self._setup(device_pair)
        ext = FluxExtensions(sdcard_network_mount=True)
        home.migration_service.migrate(guest, DEMO_PACKAGE, extensions=ext)
        (entry,) = thread.process.fds.find(
            lambda o: isinstance(o, NetworkFile))
        link = link_between(guest.profile, home.profile, guest.rng_factory)
        before = clock.now
        entry.obj.read_remote(2048, link, clock)
        assert clock.now > before
        assert entry.obj.remote_reads == 1


class TestGpsTether:
    """Paper §3.2: 'the user is given the option to allow communication
    with that device to continue to take place over the network'."""

    def _setup(self, clock):
        from repro.android.device import Device
        from repro.android.hardware.profiles import NEXUS_4, NEXUS_7_2012
        from repro.sim.rng import RngFactory
        factory = RngFactory(41)
        home = Device(NEXUS_4, clock, factory, name="home")       # has GPS
        guest = Device(NEXUS_7_2012, clock, factory, name="guest")  # none
        thread = launch_demo(home)
        location = thread.context.get_system_service("location")
        location.request_updates("gps", "nav-listener")
        home.service("location").report_fix("gps", 40.81, -73.96)
        home.pairing_service.pair(guest)
        return home, guest, thread

    def test_default_falls_back_to_network_provider(self, clock):
        home, guest, thread = self._setup(clock)
        report = home.migration_service.migrate(guest, DEMO_PACKAGE)
        snapshot = guest.service("location").snapshot(DEMO_PACKAGE)
        assert snapshot["requests"] == [("nav-listener", "network")]

    def test_extension_tethers_gps_to_home(self, clock):
        home, guest, thread = self._setup(clock)
        ext = FluxExtensions(gps_tether=True)
        report = home.migration_service.migrate(guest, DEMO_PACKAGE,
                                                extensions=ext)
        assert report.success
        guest_location = guest.service("location")
        assert guest_location.is_tethered("gps")
        snapshot = guest_location.snapshot(DEMO_PACKAGE)
        assert snapshot["requests"] == [("nav-listener", "gps")]
        assert any("tethered" in a for a in report.replay.adaptations)
        # Fixes flow from the home device's hardware.
        location = thread.context.get_system_service("location")
        fix = location.getLastKnownLocation("gps")
        assert (fix.latitude, fix.longitude) == (40.81, -73.96)


class TestAllExtensionsTogether:
    def test_full_catalog_migrates_18_of_18(self, clock):
        """With every extension on, even Facebook and Subway Surfers go."""
        from repro.android.device import Device
        from repro.android.hardware.profiles import NEXUS_7_2013
        from repro.apps import TOP_APPS
        from repro.sim.rng import RngFactory
        factory = RngFactory(43)
        home = Device(NEXUS_7_2013, clock, factory, name="home")
        guest = Device(NEXUS_7_2013, clock, factory, name="guest")
        for spec in TOP_APPS:
            spec.install(home)
        home.pairing_service.pair(guest)
        ext = FluxExtensions.all()
        migrated = 0
        for spec in TOP_APPS:
            spec.install_and_launch(home)
            report = home.migration_service.migrate(guest, spec.package,
                                                    extensions=ext)
            assert report.success, spec.title
            migrated += 1
        assert migrated == 18
        assert len(guest.running_packages()) == 18
