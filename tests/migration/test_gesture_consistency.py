"""Gesture trigger and cross-device consistency management."""

import pytest

from repro.android.app.notification import Notification
from repro.core.migration.consistency import (
    ConsistencyChoice,
    ConsistencyConflict,
)
from repro.core.migration.gesture import (
    MigrationGestureTrigger,
    TouchEvent,
    TwoFingerSwipeDetector,
)
from repro.sim import units
from tests.conftest import DEMO_PACKAGE, launch_demo


def two_finger_swipe(detector, dy=-300.0, duration=0.25, dx=0.0,
                     fingers=(0, 1)):
    xs = {pointer: 100.0 + pointer * 80.0 for pointer in fingers}
    for pointer, x in xs.items():
        detector.feed(TouchEvent(0.0, pointer, x, 500.0, "down"))
    for pointer, x in xs.items():
        detector.feed(TouchEvent(duration / 2, pointer, x + dx / 2,
                                 500.0 + dy / 2, "move"))
    for pointer, x in xs.items():
        detector.feed(TouchEvent(duration, pointer, x + dx,
                                 500.0 + dy, "up"))


class TestSwipeDetector:
    def test_two_finger_vertical_swipe_detected(self):
        hits = []
        detector = TwoFingerSwipeDetector(hits.append)
        two_finger_swipe(detector)
        assert len(hits) == 1
        assert hits[0].direction == "up"
        assert hits[0].pointer_count == 2

    def test_downward_swipe_direction(self):
        hits = []
        detector = TwoFingerSwipeDetector(hits.append)
        two_finger_swipe(detector, dy=400.0)
        assert hits[0].direction == "down"

    def test_single_finger_rejected(self):
        hits = []
        detector = TwoFingerSwipeDetector(hits.append)
        two_finger_swipe(detector, fingers=(0,))
        assert hits == []

    def test_short_swipe_rejected(self):
        hits = []
        detector = TwoFingerSwipeDetector(hits.append)
        two_finger_swipe(detector, dy=-50.0)
        assert hits == []

    def test_slow_swipe_rejected(self):
        hits = []
        detector = TwoFingerSwipeDetector(hits.append)
        two_finger_swipe(detector, duration=2.0)
        assert hits == []

    def test_horizontal_drift_rejected(self):
        hits = []
        detector = TwoFingerSwipeDetector(hits.append)
        two_finger_swipe(detector, dy=-300.0, dx=-400.0)
        assert hits == []


class TestGestureTrigger:
    def test_swipe_triggers_migration_of_foreground_app(self, device_pair):
        home, guest = device_pair
        launch_demo(home)
        home.pairing_service.pair(guest)
        triggered = []
        trigger = MigrationGestureTrigger(home, triggered.append)
        trigger.swipe("up")
        assert triggered == [DEMO_PACKAGE]

    def test_no_foreground_app_no_trigger(self, device, clock):
        launch_demo(device)
        device.activity_service.background_app(DEMO_PACKAGE)
        clock.advance(1.0)
        triggered = []
        trigger = MigrationGestureTrigger(device, triggered.append)
        trigger.swipe("up")
        assert triggered == []

    def test_end_to_end_swipe_to_migrate(self, device_pair):
        home, guest = device_pair
        launch_demo(home)
        home.pairing_service.pair(guest)
        trigger = MigrationGestureTrigger(
            home, lambda pkg: home.migration_service.migrate(guest, pkg))
        trigger.swipe("up")
        assert guest.running_packages() == [DEMO_PACKAGE]


class TestConsistency:
    def _migrated(self, device_pair):
        home, guest = device_pair
        thread = launch_demo(home)
        home.pairing_service.pair(guest)
        home.migration_service.migrate(guest, DEMO_PACKAGE)
        return home, guest, thread

    def test_native_start_raises_conflict(self, device_pair):
        home, guest, _ = self._migrated(device_pair)
        with pytest.raises(ConsistencyConflict) as excinfo:
            home.consistency.check_native_start(DEMO_PACKAGE)
        assert excinfo.value.guest_name == guest.name

    def test_discard_guest_state(self, device_pair):
        home, guest, _ = self._migrated(device_pair)
        home.consistency.resolve_native_start(
            DEMO_PACKAGE, guest, ConsistencyChoice.DISCARD_GUEST_STATE)
        assert guest.thread_of(DEMO_PACKAGE) is None
        assert guest.recorder.extract_app_log(DEMO_PACKAGE) == []
        home.consistency.check_native_start(DEMO_PACKAGE)   # no conflict now

    def test_sync_back_pulls_guest_data(self, device_pair):
        home, guest, thread = self._migrated(device_pair)
        # The app modified its data directory while on the guest.
        from repro.core.migration.pairing import flux_root
        root = flux_root(home.name)
        path = f"{root}/data/{DEMO_PACKAGE}/shared_prefs/prefs.xml"
        if guest.storage.exists(path):
            guest.storage.remove(path)
        guest.storage.add_file(path, units.kb(32),
                               "guest-modified-prefs")
        moved = home.consistency.sync_state_back(DEMO_PACKAGE, guest)
        assert moved == units.kb(32)
        entry = home.storage.get(
            f"/data/data/{DEMO_PACKAGE}/shared_prefs/prefs.xml")
        assert entry.content_hash == guest.storage.get(path).content_hash

    def test_unmarked_app_starts_freely(self, device_pair):
        home, _ = device_pair
        home.consistency.check_native_start("com.never.migrated")
