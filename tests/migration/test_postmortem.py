"""flux-sim explain: post-mortems reconstructed from the causal event log.

The satellite contract: for each fault plan (link drop, restore failure)
the post-mortem names the faulted stage, the triggering event, and a
non-empty causal chain whose ``#seq`` / ``txn=`` references resolve back
to the ``--events-out`` JSONL.
"""

import re

import pytest

from repro.cli import main
from repro.core.migration.postmortem import (
    PostmortemError,
    build_postmortem,
    critical_path_from_metrics,
    render_postmortem,
    segment_migrations,
)
from repro.sim.events import read_jsonl


def _seqs_in(text):
    return {int(m) for m in re.findall(r"#(\d+)", text)}


def _txns_in(text):
    return {int(m) for m in re.findall(r"txn=(\d+)", text)}


class TestLinkFaultExplain:
    @pytest.fixture
    def artifacts(self, tmp_path):
        events = tmp_path / "events.jsonl"
        metrics = tmp_path / "metrics.json"
        assert main(["migrate", "--app", "WhatsApp",
                     "--drop-link-after-bytes", "1000000",
                     "--events-out", str(events),
                     "--metrics-out", str(metrics)]) == 1
        return events, metrics

    def test_explain_names_stage_trigger_and_chain(self, artifacts,
                                                   capsys):
        events, metrics = artifacts
        capsys.readouterr()
        assert main(["explain", str(events), "--metrics",
                     str(metrics)]) == 0
        out = capsys.readouterr().out
        assert "FAULTED in transfer stage" in out
        assert "link-down" in out
        # The triggering event heads the causal chain.
        assert "causal chain:" in out
        chain = out.split("causal chain:")[1]
        assert "link.fault" in chain.split("\n")[1]
        assert "-> " in chain and "stage.fault" in chain
        assert "migration.rolled_back" in chain
        assert "stage.rollback" in chain
        assert "<- faulted" in out

    def test_printed_ids_resolve_to_the_jsonl(self, artifacts, capsys):
        events, _ = artifacts
        capsys.readouterr()
        assert main(["explain", str(events)]) == 0
        out = capsys.readouterr().out
        log = read_jsonl(str(events))
        seqs = {e["seq"] for e in log}
        txns = {e["txn"] for e in log if e["txn"] is not None}
        printed_seqs = _seqs_in(out)
        assert printed_seqs and printed_seqs <= seqs
        assert _txns_in(out) <= txns

    def test_tail_length_flag(self, artifacts, capsys):
        events, _ = artifacts
        capsys.readouterr()
        assert main(["explain", str(events), "--last", "3"]) == 0
        out = capsys.readouterr().out
        assert "last 3 events before the fault:" in out

    def test_metrics_annotates_critical_path(self, artifacts, capsys):
        events, metrics = artifacts
        capsys.readouterr()
        assert main(["explain", str(events), "--metrics",
                     str(metrics)]) == 0
        assert "critical path:" in capsys.readouterr().out


class TestRestoreFaultExplain:
    def test_explain_names_stage_trigger_and_chain(self, tmp_path,
                                                   capsys):
        events = tmp_path / "events.jsonl"
        assert main(["migrate", "--app", "WhatsApp",
                     "--fail-restore-after", "3",
                     "--events-out", str(events)]) == 1
        capsys.readouterr()
        assert main(["explain", str(events)]) == 0
        out = capsys.readouterr().out
        assert "FAULTED in restore stage" in out
        assert "restore-failed" in out
        chain = out.split("causal chain:")[1]
        assert "cria.restore_fault" in chain.split("\n")[1]
        assert "stage.fault" in chain
        assert "migration.rolled_back" in chain
        # Guest-side restore steps attribute to the stage via context.
        log = read_jsonl(str(events))
        steps = [e for e in log if e["kind"] == "cria.restore_step"]
        assert steps
        assert all(e["device"] == "guest" for e in steps)
        assert all(e["attrs"]["stage"] == "restore" for e in steps)


class TestSuccessAndSelection:
    def test_successful_migration_explains_cleanly(self, tmp_path,
                                                   capsys):
        events = tmp_path / "events.jsonl"
        assert main(["migrate", "--app", "ZEDGE",
                     "--events-out", str(events)]) == 0
        capsys.readouterr()
        assert main(["explain", str(events)]) == 0
        out = capsys.readouterr().out
        assert "SUCCEEDED" in out
        assert "events per stage:" in out
        assert "causal chain:" not in out

    def test_package_filter_unknown_package_exits(self, tmp_path, capsys):
        events = tmp_path / "events.jsonl"
        assert main(["migrate", "--app", "ZEDGE",
                     "--events-out", str(events)]) == 0
        with pytest.raises(SystemExit):
            main(["explain", str(events), "--package", "com.nope"])

    def test_empty_log_exits_with_hint(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(SystemExit):
            main(["explain", str(path)])

    def test_missing_file_exits(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["explain", str(tmp_path / "nope.jsonl")])


def _event(seq, t, kind, device="home", txn=None, **attrs):
    return {"seq": seq, "t": t, "device": device, "kind": kind,
            "txn": txn, "span": None, "attrs": attrs}


class TestSegmentation:
    def test_segments_split_on_lifecycle_events(self):
        events = [
            _event(1, 0.0, "binder.transact", txn=1),
            _event(2, 1.0, "migration.start", package="a", home="home",
                   guest="guest"),
            _event(3, 2.0, "migration.done", package="a"),
            _event(4, 3.0, "migration.start", package="b", home="home",
                   guest="guest"),
            _event(5, 4.0, "stage.fault", stage="transfer",
                   reason="link-down"),
            _event(6, 5.0, "migration.rolled_back", package="b"),
        ]
        segments = segment_migrations(events)
        assert [s["package"] for s in segments] == ["a", "b"]
        assert [s["outcome"] for s in segments] == ["succeeded", "faulted"]

    def test_refusal_and_incomplete_outcomes(self):
        events = [
            _event(1, 0.0, "migration.start", package="a"),
            _event(2, 1.0, "migration.refused", stage="preparation",
                   reason="multi-process"),
            _event(3, 2.0, "migration.rolled_back", package="a"),
            _event(4, 3.0, "migration.start", package="b"),
        ]
        segments = segment_migrations(events)
        assert [s["outcome"] for s in segments] == ["refused", "incomplete"]

    def test_build_picks_most_recent_failure(self):
        events = [
            _event(1, 0.0, "migration.start", package="a"),
            _event(2, 1.0, "link.fault", bytes=3),
            _event(3, 1.0, "stage.fault", stage="transfer",
                   reason="link-down"),
            _event(4, 2.0, "migration.rolled_back", package="a"),
            _event(5, 3.0, "migration.start", package="b"),
            _event(6, 4.0, "migration.done", package="b",
                   total_seconds=1.0),
        ]
        postmortem = build_postmortem(events)
        assert postmortem["package"] == "a"
        assert postmortem["outcome"] == "faulted"
        assert postmortem["faulted_stage"] == "transfer"
        kinds = [e["kind"] for e in postmortem["causal_chain"]]
        assert kinds == ["link.fault", "stage.fault",
                         "migration.rolled_back"]
        # ...while --package selects explicitly.
        assert build_postmortem(events, package="b")["outcome"] == \
            "succeeded"

    def test_no_migrations_raises(self):
        with pytest.raises(PostmortemError):
            build_postmortem([_event(1, 0.0, "binder.transact")])

    def test_render_mentions_multiple_migrations(self):
        events = [
            _event(1, 0.0, "migration.start", package="a"),
            _event(2, 1.0, "migration.done", package="a"),
            _event(3, 2.0, "migration.start", package="b"),
            _event(4, 3.0, "migration.done", package="b"),
        ]
        text = render_postmortem(build_postmortem(events))
        assert "2 migrations in the log" in text
        assert "most recent migration" in text


class TestCriticalPathFromMetrics:
    def test_migrate_document_shape(self):
        path = [{"name": "transfer", "seconds": 1.0}]
        doc = {"migration": {"critical_path": path}}
        assert critical_path_from_metrics(doc) == path

    def test_sweep_document_shape_selects_package(self):
        doc = {"migrations": [
            {"package": "a", "critical_path": [{"name": "x"}]},
            {"package": "b", "critical_path": [{"name": "y"}]},
        ]}
        assert critical_path_from_metrics(doc, "b") == [{"name": "y"}]
        assert critical_path_from_metrics(doc) == [{"name": "x"}]
        assert critical_path_from_metrics({}) is None
