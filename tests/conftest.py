"""Shared fixtures: booted devices, paired device pairs, a demo app."""

from __future__ import annotations

import pytest

from repro.android.app.activity import Activity
from repro.android.app.views import View, ViewGroup
from repro.android.device import Device
from repro.android.hardware.profiles import NEXUS_4, NEXUS_7_2012, NEXUS_7_2013
from repro.android.storage.apk import ApkFile
from repro.sim import SimClock, units
from repro.sim.rng import RngFactory


DEMO_PACKAGE = "com.example.demo"


class DemoActivity(Activity):
    """Small plain-UI activity used across the suite."""

    def on_create(self, saved_state) -> None:
        root = ViewGroup("root")
        for i in range(4):
            root.add_view(View(f"item-{i}"))
        self.set_content_view(root)


@pytest.fixture
def clock():
    return SimClock()


@pytest.fixture
def device(clock):
    """A single booted Nexus 4."""
    return Device(NEXUS_4, clock, RngFactory(1), name="solo")


@pytest.fixture
def device_pair(clock):
    """A paired (home, guest) pair: Nexus 4 home, Nexus 7 (2013) guest."""
    factory = RngFactory(2)
    home = Device(NEXUS_4, clock, factory, name="home")
    guest = Device(NEXUS_7_2013, clock, factory, name="guest")
    return home, guest


@pytest.fixture
def heterogeneous_pair(clock):
    """Nexus 7 (2012) home (kernel 3.1, no GPS) to Nexus 4 guest."""
    factory = RngFactory(3)
    home = Device(NEXUS_7_2012, clock, factory, name="home")
    guest = Device(NEXUS_4, clock, factory, name="guest")
    return home, guest


def install_demo(device, package: str = DEMO_PACKAGE,
                 apk_mb: float = 5.0, **apk_kwargs) -> ApkFile:
    apk = ApkFile(package, 7, units.mb(apk_mb), **apk_kwargs)
    device.install_app(apk)
    return apk


def launch_demo(device, package: str = DEMO_PACKAGE,
                activity_cls=DemoActivity, heap_mb: float = 6.0, **kwargs):
    install_demo(device, package)
    return device.launch_app(package, activity_cls,
                             heap_bytes=units.mb(heap_mb), **kwargs)


@pytest.fixture
def demo_thread(device):
    return launch_demo(device)
