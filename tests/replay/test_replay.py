"""Adaptive Replay: engine routing, proxies, hardware adaptation."""

import pytest

from repro.android.app.intent import Intent, PendingIntent
from repro.android.app.notification import Notification
from repro.core.cria import checkpoint_app, prepare_app, restore_app
from repro.core.replay import ReplaySession, replay_log
from tests.conftest import DEMO_PACKAGE, launch_demo


def migrate_state(home, guest, thread, package=DEMO_PACKAGE):
    """Prepare, checkpoint, restore, and build a replay session."""
    home.pairing_service.pair(guest)
    prepare_app(home, package)
    image = checkpoint_app(home, package)
    restored = restore_app(guest, image)
    return image, restored


class TestDirectReplay:
    def test_notifications_reappear_on_guest(self, device_pair):
        home, guest = device_pair
        thread = launch_demo(home)
        nm = thread.context.get_system_service("notification")
        nm.notify(1, Notification("hello", "world"))
        home_snapshot = home.service("notification").snapshot(DEMO_PACKAGE)

        image, restored = migrate_state(home, guest, thread)
        report = replay_log(guest, restored, image)
        assert report.replayed == 1
        assert guest.service("notification").snapshot(DEMO_PACKAGE) == \
            home_snapshot

    def test_replayed_calls_recorded_on_guest(self, device_pair):
        """The guest's log must support a *second* migration."""
        home, guest = device_pair
        thread = launch_demo(home)
        nm = thread.context.get_system_service("notification")
        nm.notify(1, Notification("hello"))
        image, restored = migrate_state(home, guest, thread)
        replay_log(guest, restored, image)
        guest_log = guest.recorder.extract_app_log(DEMO_PACKAGE)
        assert [(e.interface, e.method) for e in guest_log] == \
            [("INotificationManagerService", "enqueueNotification")]


class TestAlarmProxies:
    def test_expired_alarm_skipped(self, device_pair, clock):
        home, guest = device_pair
        thread = launch_demo(home)
        alarm = thread.context.get_system_service("alarm")
        expired = PendingIntent(DEMO_PACKAGE, Intent("OLD"))
        future = PendingIntent(DEMO_PACKAGE, Intent("NEW"), request_code=2)
        alarm.set(alarm.RTC, clock.now + 0.05, expired)
        alarm.set(alarm.RTC, clock.now + 1e6, future)
        clock.advance(1.0)    # the first alarm fires pre-migration

        image, restored = migrate_state(home, guest, thread)
        report = replay_log(guest, restored, image)
        assert report.skipped == 1
        actions = [a for a, _, _ in
                   guest.service("alarm").snapshot(DEMO_PACKAGE)["alarms"]]
        assert actions == ["NEW"]

    def test_alarm_due_mid_migration_still_fires(self, device_pair, clock):
        """The proxy compares against checkpoint time, not current time."""
        home, guest = device_pair
        thread = launch_demo(home)
        received = []
        thread.register_receiver(received.append, ["MIDFLIGHT"])
        alarm = thread.context.get_system_service("alarm")
        pi = PendingIntent(DEMO_PACKAGE, Intent("MIDFLIGHT"))
        home.pairing_service.pair(guest)
        alarm.set(alarm.RTC, clock.now + 5.0, pi)
        prepare_app(home, DEMO_PACKAGE)
        image = checkpoint_app(home, DEMO_PACKAGE)
        # Home-side cleanup (what MigrationService does): the frozen app
        # leaves the home device, so home's copy of the alarm cannot
        # reach it when the deadline passes mid-migration.
        home.activity_service.detach_application(DEMO_PACKAGE)
        clock.advance(10.0)     # migration takes long; alarm deadline passes
        restored = restore_app(guest, image)
        report = replay_log(guest, restored, image)
        assert report.skipped == 0   # NOT skipped: due after checkpoint
        # The overdue alarm fires promptly on the guest and reaches the
        # app's (replay-re-registered) receiver.
        clock.advance(0.1)
        assert [i.action for i in received] == ["MIDFLIGHT"]

    def test_repeating_alarm_rolls_forward(self, device_pair, clock):
        home, guest = device_pair
        thread = launch_demo(home)
        alarm = thread.context.get_system_service("alarm")
        pi = PendingIntent(DEMO_PACKAGE, Intent("TICK"))
        alarm.set_repeating(alarm.RTC, clock.now + 1.0, 1.0, pi)
        clock.advance(3.5)      # several firings happen at home

        image, restored = migrate_state(home, guest, thread)
        report = replay_log(guest, restored, image)
        assert any("missed firings" in a for a in report.adaptations)
        ((action, trigger, interval),) = \
            guest.service("alarm").snapshot(DEMO_PACKAGE)["alarms"]
        assert trigger > image.checkpoint_time


class TestAudioProxy:
    def test_volume_rescaled_to_guest_range(self, device_pair):
        home, guest = device_pair
        thread = launch_demo(home)
        audio = thread.context.get_system_service("audio")
        home_service = home.service("audio")
        guest_service = guest.service("audio")
        # Give the guest a different MUSIC range: home 15, guest 30.
        guest_service._max[3] = 30
        audio.set_stream_volume(3, 10)

        image, restored = migrate_state(home, guest, thread)
        report = replay_log(guest, restored, image)
        assert guest_service.snapshot(DEMO_PACKAGE)["volumes"][3] == 20
        assert any("volume" in a for a in report.adaptations)


class TestSensorProxies:
    def test_connection_and_channel_recreated(self, device_pair):
        home, guest = device_pair
        thread = launch_demo(home)
        sensors = thread.context.get_system_service("sensor")
        accel = sensors.default_sensor("accelerometer")
        events = []
        sensors.register_listener(events.append, accel.handle)
        old_fd = sensors.channel_fd
        old_handle = sensors._connection._remote.handle

        image, restored = migrate_state(home, guest, thread)
        report = replay_log(guest, restored, image)
        assert report.proxied == 2       # create-connection + get-channel
        # Same handle now points at a live guest-side connection node.
        node = guest.binder.resolve(restored.process, old_handle)
        assert node.label.startswith("sensor-connection:")
        # Same fd number carries a live guest socket.
        sock = restored.process.fds.get(old_fd)
        assert not sock.closed
        # Events flow end-to-end on the guest.
        delivered = guest.service("sensor").inject_event(accel.handle,
                                                         b"guest-evt")
        assert delivered == 1
        assert sensors.poll_events() == [b"guest-evt"]
        assert events == [b"guest-evt"]


class TestHardwareAdaptation:
    def test_gps_falls_back_to_network(self, clock):
        from repro.android.device import Device
        from repro.android.hardware.profiles import NEXUS_4, NEXUS_7_2012
        from repro.sim.rng import RngFactory
        factory = RngFactory(5)
        home = Device(NEXUS_4, clock, factory, name="home")        # has GPS
        guest = Device(NEXUS_7_2012, clock, factory, name="guest")  # no GPS
        thread = launch_demo(home)
        location = thread.context.get_system_service("location")
        location.request_updates("gps", "listener-1")

        image, restored = migrate_state(home, guest, thread)
        report = replay_log(guest, restored, image)
        assert any("falling back" in a for a in report.adaptations)
        snapshot = guest.service("location").snapshot(DEMO_PACKAGE)
        assert snapshot["requests"] == [("listener-1", "network")]

    def test_gps_status_listener_skipped_without_gps(self, clock):
        from repro.android.device import Device
        from repro.android.hardware.profiles import NEXUS_4, NEXUS_7_2012
        from repro.sim.rng import RngFactory
        factory = RngFactory(6)
        home = Device(NEXUS_4, clock, factory, name="home")
        guest = Device(NEXUS_7_2012, clock, factory, name="guest")
        thread = launch_demo(home)
        location = thread.context.get_system_service("location")
        location.addGpsStatusListener("gps-listener")

        image, restored = migrate_state(home, guest, thread)
        report = replay_log(guest, restored, image)
        assert report.skipped == 1
