"""Fair-share bandwidth arbitration (Medium) and the flow ops."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.android.net.link import (
    FaultOp,
    Link,
    LinkDownError,
    Medium,
    RecordOp,
    TransferOp,
)
from repro.sim import SimClock, units
from repro.sim.rng import RngFactory
from repro.sim.scheduler import Scheduler


def _link(seed=0, name="wifi"):
    return Link(bandwidth_mbps=10.0, latency_s=0.0, congestion=1.0,
                rng_factory=RngFactory(seed), name=name)


def _run_flows(specs):
    """Submit ``(start, payload_mb[, seed])`` flows; return their fates.

    Each flow runs on its own link (accounting isolated, jitter seeded
    per spec so reordering specs keeps each flow's solo time) but all
    share one medium.  Returns ``(start, solo_seconds, end_time)`` per
    flow, in spec order.
    """
    clock = SimClock()
    medium = Medium(clock)
    specs = [spec if len(spec) == 3 else (*spec, spec[1])
             for spec in specs]
    ends = [None] * len(specs)
    solos = [None] * len(specs)

    def submit(i, payload_bytes, seed):
        link = _link(seed=seed, name=f"wifi{seed}")
        solo, _, _ = link._plan_transfer(payload_bytes)
        solos[i] = solo
        waiter = medium.submit(link, payload_bytes, solo)
        waiter.add_done(lambda w, i=i: ends.__setitem__(i, clock.now))

    for i, (start, payload_mb, seed) in enumerate(specs):
        clock.call_at(start, lambda i=i, mb=payload_mb, seed=seed:
                      submit(i, units.mb(mb), seed))
    while clock.next_deadline() is not None:
        clock.advance_to(clock.next_deadline())
    return [(start, solos[i], ends[i])
            for i, (start, _, _) in enumerate(specs)]


def _reference_processor_sharing(flows):
    """Independent PS model: (start, work) -> analytic end times."""
    events = sorted(range(len(flows)), key=lambda i: flows[i][0])
    remaining = {}
    ends = [None] * len(flows)
    t = 0.0
    pending = list(events)
    while pending or remaining:
        next_start = flows[pending[0]][0] if pending else None
        if remaining:
            horizon = t + min(remaining.values()) * len(remaining)
        else:
            horizon = None
        if horizon is None or (next_start is not None
                               and next_start < horizon):
            # Accrue up to the next submission, then admit it.
            if remaining and next_start > t:
                share = (next_start - t) / len(remaining)
                for key in remaining:
                    remaining[key] -= share
            t = max(t, next_start)
            i = pending.pop(0)
            remaining[i] = flows[i][1]
        else:
            share = (horizon - t) / len(remaining)
            for key in remaining:
                remaining[key] -= share
            t = horizon
            done = [k for k, v in remaining.items() if v <= 1e-9]
            for k in done:
                ends[k] = t
                del remaining[k]
    return ends


class TestSingleFlow:
    def test_solo_timing_matches_the_synchronous_path_exactly(self):
        sync_link = _link()
        sync_clock = SimClock()
        sync_result = sync_link.transfer(units.mb(4), sync_clock)

        flow_link = _link()
        clock = SimClock()
        scheduler = Scheduler(clock)

        def session():
            result = yield TransferOp(flow_link, units.mb(4))
            return result

        handle = scheduler.spawn(session())
        scheduler.run()
        assert handle.result.seconds == sync_result.seconds
        assert handle.result.payload_bytes == sync_result.payload_bytes
        assert clock.now == sync_clock.now
        assert flow_link.bytes_transferred == sync_link.bytes_transferred

    def test_record_op_matches_record_transfer(self):
        sync_link = _link()
        sync_clock = SimClock()
        sync_result = sync_link.record_transfer(units.mb(2), 1.25,
                                                sync_clock)
        flow_link = _link()
        clock = SimClock()
        scheduler = Scheduler(clock)

        def session():
            yield RecordOp(flow_link, units.mb(2), 1.25)

        handle = scheduler.spawn(session())
        scheduler.run()
        assert handle.error is None
        assert clock.now == sync_clock.now == sync_result.seconds

    def test_fault_op_rejects_with_link_down(self):
        link = _link()
        clock = SimClock()
        scheduler = Scheduler(clock)

        def session():
            try:
                yield FaultOp(link, units.mb(1), 0.5)
            except LinkDownError:
                return ("down", clock.now)

        handle = scheduler.spawn(session())
        scheduler.run()
        assert handle.result == ("down", 0.5)
        assert link.faulted
        assert link.bytes_transferred == units.mb(1)


class TestFairShare:
    def test_two_flows_started_together_share_the_wire(self):
        [(_, solo_a, end_a), (_, solo_b, end_b)] = _run_flows(
            [(0.0, 4), (0.0, 4)])
        # Processor sharing: the shorter flow sees exactly half rate
        # until it completes (2x its solo time); the longer one then
        # runs alone and finishes at the total work time.
        shorter, longer = sorted((solo_a, solo_b))
        assert min(end_a, end_b) == pytest.approx(2 * shorter)
        assert max(end_a, end_b) == pytest.approx(solo_a + solo_b)

    def test_total_bytes_are_conserved(self):
        clock = SimClock()
        medium = Medium(clock)
        links = [_link(seed=i, name=f"wifi{i}") for i in range(3)]
        payloads = [units.mb(1), units.mb(2), units.mb(3)]
        for link, payload in zip(links, payloads):
            solo, _, _ = link._plan_transfer(payload)
            medium.submit(link, payload, solo)
        while clock.next_deadline() is not None:
            clock.advance_to(clock.next_deadline())
        assert [link.bytes_transferred for link in links] == payloads
        assert medium.completed_flows == 3
        assert medium.peak_concurrency == 3

    @settings(max_examples=30, deadline=None)
    @given(start_b=st.floats(min_value=0.0, max_value=10.0),
           mb_a=st.integers(min_value=1, max_value=16),
           mb_b=st.integers(min_value=1, max_value=16))
    def test_wire_seconds_conserved_under_any_interleaving(
            self, start_b, mb_a, mb_b):
        flows = _run_flows([(0.0, mb_a), (start_b, mb_b)])
        works = [(start, solo) for start, solo, _ in flows]
        expected = _reference_processor_sharing(works)
        for (_, _, end), ref in zip(flows, expected):
            assert end == pytest.approx(ref, abs=1e-6)
        # Busy time equals total work: the wire neither creates nor
        # destroys seconds, it only spreads them over wall time.
        last_end = max(end for _, _, end in flows)
        total_work = sum(solo for _, solo, _ in flows)
        idle = max(0.0, start_b - flows[0][1]) if start_b > flows[0][1] \
            else 0.0
        assert last_end == pytest.approx(total_work + idle, abs=1e-6)

    def test_submission_order_does_not_change_end_times(self):
        forward = _run_flows([(0.0, 3), (0.0, 7)])
        backward = _run_flows([(0.0, 7), (0.0, 3)])
        assert sorted(end for _, _, end in forward) == pytest.approx(
            sorted(end for _, _, end in backward))

    def test_late_joiner_slows_the_first_flow_down(self):
        solo = _run_flows([(0.0, 8)])
        contended = _run_flows([(0.0, 8), (1.0, 8)])
        assert contended[0][2] > solo[0][2]
