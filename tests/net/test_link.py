"""Network link model."""

import pytest

from repro.android.hardware.profiles import NEXUS_4, NEXUS_7_2012
from repro.android.net.link import (
    Link,
    LinkDownError,
    LinkError,
    LinkFaultPlan,
    link_between,
)
from repro.sim import SimClock, units
from repro.sim.rng import RngFactory


class TestLink:
    def test_transfer_charges_clock(self):
        link = Link(bandwidth_mbps=8.0, latency_s=0.0, congestion=1.0,
                    rng_factory=RngFactory(0))
        clock = SimClock()
        result = link.transfer(units.mb(1), clock)
        assert clock.now == pytest.approx(result.seconds)
        # 1 MB at ~8 Mbps (±10% jitter) is ~1.05 s.
        assert 0.9 <= result.seconds <= 1.25

    def test_bigger_payload_takes_longer(self):
        link = Link(bandwidth_mbps=10.0, rng_factory=RngFactory(0))
        assert link.transfer_time(units.mb(10)) > link.transfer_time(units.mb(1))

    def test_latency_floor(self):
        link = Link(bandwidth_mbps=10.0, latency_s=0.25,
                    rng_factory=RngFactory(0))
        assert link.transfer_time(0) == pytest.approx(0.25)

    def test_deterministic_given_seed(self):
        a = Link(10.0, rng_factory=RngFactory(7), name="x")
        b = Link(10.0, rng_factory=RngFactory(7), name="x")
        assert a.transfer_time(units.mb(2)) == b.transfer_time(units.mb(2))

    def test_accounting(self):
        link = Link(10.0, rng_factory=RngFactory(0))
        clock = SimClock()
        link.transfer(100, clock)
        link.transfer(200, clock)
        assert link.bytes_transferred == 300
        assert link.transfers == 2

    def test_invalid_parameters(self):
        with pytest.raises(LinkError):
            Link(bandwidth_mbps=0)
        link = Link(10.0, rng_factory=RngFactory(0))
        with pytest.raises(LinkError):
            link.transfer_time(-1)

    def test_link_between_uses_slower_endpoint(self):
        link = link_between(NEXUS_4, NEXUS_7_2012, RngFactory(0))
        assert link.bandwidth_mbps == NEXUS_7_2012.wifi_effective_mbps
        assert "nexus4" in link.name


class TestConstructionBounds:
    def test_congestion_must_be_in_unit_interval(self):
        for congestion in (0.0, -0.2, 1.5):
            with pytest.raises(LinkError, match="congestion"):
                Link(10.0, congestion=congestion,
                     rng_factory=RngFactory(0))
        # 1.0 means an uncontended link and is legal.
        Link(10.0, congestion=1.0, rng_factory=RngFactory(0))

    def test_latency_must_be_non_negative(self):
        with pytest.raises(LinkError, match="latency"):
            Link(10.0, latency_s=-0.01, rng_factory=RngFactory(0))
        Link(10.0, latency_s=0.0, rng_factory=RngFactory(0))


class TestZeroByteTransfer:
    def test_charges_latency_only(self):
        link = Link(10.0, latency_s=0.25, rng_factory=RngFactory(0))
        clock = SimClock()
        result = link.transfer(0, clock)
        assert result.seconds == pytest.approx(0.25)
        assert clock.now == pytest.approx(0.25)
        assert result.effective_mbps == 0.0   # no 0/seconds artifact

    def test_draws_no_congestion_jitter(self):
        # An empty control round must not perturb the RNG stream: the
        # next real transfer times identically with or without it.
        a = Link(10.0, rng_factory=RngFactory(7), name="x")
        b = Link(10.0, rng_factory=RngFactory(7), name="x")
        a.transfer(0, SimClock())
        assert a.transfer_time(units.mb(2)) == b.transfer_time(units.mb(2))

    def test_still_counts_as_a_transfer(self):
        link = Link(10.0, rng_factory=RngFactory(0))
        link.transfer(0, SimClock())
        assert link.transfers == 1
        assert link.bytes_transferred == 0


class TestFaultPlans:
    def test_empty_plan_rejected(self):
        with pytest.raises(LinkError, match="empty fault plan"):
            LinkFaultPlan()

    def test_negative_clauses_rejected(self):
        with pytest.raises(LinkError):
            LinkFaultPlan(drop_after_bytes=-1)
        with pytest.raises(LinkError):
            LinkFaultPlan(drop_after_transfers=-2)

    def test_byte_offset_drop_delivers_partial(self):
        link = Link(10.0, latency_s=0.0, rng_factory=RngFactory(0),
                    fault_plan=LinkFaultPlan(drop_after_bytes=500))
        clock = SimClock()
        healthy = Link(10.0, latency_s=0.0, rng_factory=RngFactory(0))
        full_time = healthy.transfer_time(1000)
        with pytest.raises(LinkDownError) as exc:
            link.transfer(1000, clock)
        assert exc.value.delivered_bytes == 500
        assert link.bytes_transferred == 500
        assert link.faulted
        # The partial slice was charged: half the full wire time.
        assert clock.now == pytest.approx(full_time / 2)

    def test_transfer_count_drop_delivers_nothing(self):
        link = Link(10.0, rng_factory=RngFactory(0))
        clock = SimClock()
        link.inject_fault(LinkFaultPlan(drop_after_transfers=1))
        link.transfer(100, clock)   # transfer 0 completes
        with pytest.raises(LinkDownError) as exc:
            link.transfer(100, clock)
        assert exc.value.delivered_bytes == 0
        assert link.bytes_transferred == 100

    def test_fault_budget_tracks_remaining_bytes(self):
        link = Link(10.0, rng_factory=RngFactory(0))
        assert link.fault_budget() is None
        link.inject_fault(LinkFaultPlan(drop_after_bytes=300))
        assert link.fault_budget() == 300
        link.transfer(200, SimClock())
        assert link.fault_budget() == 100

    def test_fault_budget_zero_after_transfer_count(self):
        link = Link(10.0, rng_factory=RngFactory(0))
        link.inject_fault(LinkFaultPlan(drop_after_transfers=0))
        assert link.fault_budget() == 0

    def test_inject_none_disarms(self):
        link = Link(10.0, rng_factory=RngFactory(0),
                    fault_plan=LinkFaultPlan(drop_after_bytes=0))
        link.inject_fault(None)
        assert link.fault_budget() is None
        link.transfer(1000, SimClock())   # does not raise

    def test_transfer_below_budget_survives(self):
        link = Link(10.0, rng_factory=RngFactory(0))
        link.inject_fault(LinkFaultPlan(drop_after_bytes=1000))
        link.transfer(1000, SimClock())   # exactly at the offset: ok
        assert not link.faulted
