"""Network link model."""

import pytest

from repro.android.hardware.profiles import NEXUS_4, NEXUS_7_2012
from repro.android.net.link import Link, LinkError, link_between
from repro.sim import SimClock, units
from repro.sim.rng import RngFactory


class TestLink:
    def test_transfer_charges_clock(self):
        link = Link(bandwidth_mbps=8.0, latency_s=0.0, congestion=1.0,
                    rng_factory=RngFactory(0))
        clock = SimClock()
        result = link.transfer(units.mb(1), clock)
        assert clock.now == pytest.approx(result.seconds)
        # 1 MB at ~8 Mbps (±10% jitter) is ~1.05 s.
        assert 0.9 <= result.seconds <= 1.25

    def test_bigger_payload_takes_longer(self):
        link = Link(bandwidth_mbps=10.0, rng_factory=RngFactory(0))
        assert link.transfer_time(units.mb(10)) > link.transfer_time(units.mb(1))

    def test_latency_floor(self):
        link = Link(bandwidth_mbps=10.0, latency_s=0.25,
                    rng_factory=RngFactory(0))
        assert link.transfer_time(0) == pytest.approx(0.25)

    def test_deterministic_given_seed(self):
        a = Link(10.0, rng_factory=RngFactory(7), name="x")
        b = Link(10.0, rng_factory=RngFactory(7), name="x")
        assert a.transfer_time(units.mb(2)) == b.transfer_time(units.mb(2))

    def test_accounting(self):
        link = Link(10.0, rng_factory=RngFactory(0))
        clock = SimClock()
        link.transfer(100, clock)
        link.transfer(200, clock)
        assert link.bytes_transferred == 300
        assert link.transfers == 2

    def test_invalid_parameters(self):
        with pytest.raises(LinkError):
            Link(bandwidth_mbps=0)
        link = Link(10.0, rng_factory=RngFactory(0))
        with pytest.raises(LinkError):
            link.transfer_time(-1)

    def test_link_between_uses_slower_endpoint(self):
        link = link_between(NEXUS_4, NEXUS_7_2012, RngFactory(0))
        assert link.bandwidth_mbps == NEXUS_7_2012.wifi_effective_mbps
        assert "nexus4" in link.name
