"""Virtual filesystem, rsync engine, framework file sets, APKs."""

import pytest
from hypothesis import given, strategies as st

from repro.android.storage import (
    ApkFile,
    DeviceStorage,
    FsError,
    RsyncEngine,
    populate_system_partition,
)
from repro.android.storage.framework_files import COMMON_BYTES, DEVICE_BYTES
from repro.sim import units
from repro.sim.rng import RngFactory


class TestFilesystem:
    def test_add_get_remove(self):
        storage = DeviceStorage()
        storage.add_file("/data/x", 100, "x-v1")
        assert storage.get("/data/x").size == 100
        storage.remove("/data/x")
        assert not storage.exists("/data/x")

    def test_relative_path_rejected(self):
        with pytest.raises(FsError):
            DeviceStorage().add_file("data/x", 1, "t")

    def test_tree_queries(self):
        storage = DeviceStorage()
        storage.add_file("/data/app/a.apk", 10, "a")
        storage.add_file("/data/app/b.apk", 20, "b")
        storage.add_file("/system/lib.so", 5, "lib")
        assert storage.tree_size("/data/app") == 30
        assert storage.file_count("/data") == 2
        assert storage.remove_tree("/data") == 2

    def test_hard_links_free_physical_bytes(self):
        storage = DeviceStorage()
        storage.add_file("/system/lib.so", 100, "lib")
        storage.add_hard_link("/data/flux/lib.so", "/system/lib.so")
        assert storage.tree_size("/data/flux") == 100
        assert storage.unique_bytes("/data/flux") == 0

    def test_same_token_same_hash(self):
        a = DeviceStorage().add_file("/a", 1, "tok")
        b = DeviceStorage().add_file("/b", 1, "tok")
        assert a.same_content(b)


class TestRsync:
    def _source(self):
        src = DeviceStorage("src")
        src.add_file("/system/common.jar", 100, "common")
        src.add_file("/system/vendor.so", 50, "src-only")
        return src

    def test_link_dest_links_identical_content(self):
        src = self._source()
        dst = DeviceStorage("dst")
        dst.add_file("/system/own-common.jar", 100, "common")
        result = RsyncEngine().sync(src, "/system", dst, "/data/flux/system",
                                    link_dest_prefix="/system")
        assert result.files_linked == 1
        assert result.bytes_linked == 100
        assert result.files_copied == 1
        assert result.bytes_delta == 50
        assert result.bytes_after_linking == 50
        assert dst.get("/data/flux/system/common.jar").hard_link_of == \
            "/system/own-common.jar"

    def test_second_sync_is_a_noop(self):
        src = self._source()
        dst = DeviceStorage("dst")
        engine = RsyncEngine()
        engine.sync(src, "/system", dst, "/mirror")
        again = engine.sync(src, "/system", dst, "/mirror")
        assert again.files_already_synced == 2
        assert again.bytes_delta == 0

    def test_changed_file_resynced(self):
        src = self._source()
        dst = DeviceStorage("dst")
        engine = RsyncEngine()
        engine.sync(src, "/system", dst, "/mirror")
        src.remove("/system/common.jar")
        src.add_file("/system/common.jar", 120, "common-v2")
        result = engine.sync(src, "/system", dst, "/mirror")
        assert result.files_copied == 1
        assert result.bytes_delta == 120

    def test_compression_applied_to_delta_only(self):
        src = self._source()
        dst = DeviceStorage("dst")
        dst.add_file("/system/x.jar", 100, "common")
        engine = RsyncEngine(compression_ratio=0.5)
        result = engine.sync(src, "/system", dst, "/m",
                             link_dest_prefix="/system")
        assert result.bytes_compressed == 25   # half of the 50-byte delta

    def test_verify_lists_stale_paths(self):
        src = self._source()
        dst = DeviceStorage("dst")
        engine = RsyncEngine()
        assert len(engine.verify(src, "/system", dst, "/m")) == 2
        engine.sync(src, "/system", dst, "/m")
        assert engine.verify(src, "/system", dst, "/m") == []

    def test_bad_compression_ratio_rejected(self):
        with pytest.raises(ValueError):
            RsyncEngine(compression_ratio=0.0)

    @given(st.lists(st.tuples(st.integers(1, 10_000), st.booleans()),
                    min_size=1, max_size=25))
    def test_accounting_invariant(self, files):
        """bytes_total == linked + delta + already-synced bytes."""
        src = DeviceStorage("src")
        dst = DeviceStorage("dst")
        already = 0
        for i, (size, shared) in enumerate(files):
            token = f"shared-{i}" if shared else f"unique-{i}"
            src.add_file(f"/system/f{i}", size, token)
            if shared:
                dst.add_file(f"/system/g{i}", size, token)
        result = RsyncEngine().sync(src, "/system", dst, "/m",
                                    link_dest_prefix="/system")
        assert result.bytes_total == result.bytes_linked + result.bytes_delta
        assert result.files_considered == len(files)


class TestFrameworkFiles:
    def test_paper_constant_data_shape(self):
        factory = RngFactory(0)
        a = DeviceStorage("a")
        b = DeviceStorage("b")
        populate_system_partition(a, "4.4.2", "nexus4", factory)
        populate_system_partition(b, "4.4.2", "nexus7", factory)
        assert a.tree_size("/system") == COMMON_BYTES + DEVICE_BYTES
        # Cross-device sync with link-dest finds exactly the common part.
        result = RsyncEngine().sync(a, "/system", b, "/data/flux/system",
                                    link_dest_prefix="/system")
        assert result.bytes_linked == COMMON_BYTES
        assert result.bytes_delta == DEVICE_BYTES

    def test_different_android_versions_share_nothing(self):
        factory = RngFactory(0)
        a = DeviceStorage("a")
        b = DeviceStorage("b")
        populate_system_partition(a, "4.4.2", "nexus4", factory)
        populate_system_partition(b, "4.3", "nexus7", factory)
        result = RsyncEngine().sync(a, "/system", b, "/m",
                                    link_dest_prefix="/system")
        assert result.bytes_linked == 0


class TestApk:
    def test_paths_derived_from_package(self):
        apk = ApkFile("com.x", 3, units.mb(5))
        assert apk.install_path == "/data/app/com.x.apk"
        assert apk.data_dir == "/data/data/com.x"
        assert apk.sdcard_data_dir == "/sdcard/Android/data/com.x"

    def test_bump_version(self):
        apk = ApkFile("com.x", 3, units.mb(5))
        newer = apk.bump_version()
        assert newer.version_code == 4
        assert newer.size_bytes > apk.size_bytes
        assert newer.content_token != apk.content_token
