"""Completeness net over the decorated AIDL surface.

Calls *every* ``@record``-decorated method of every system service once
(with synthesized arguments), then migrates the app and replays whatever
survived pruning.  If a future edit adds a decorated method whose replay
path is broken — wrong routing, missing proxy, unserializable argument —
this test is the tripwire.
"""

import pytest

from repro.android.app.intent import Intent, IntentFilter, PendingIntent
from repro.android.app.notification import Notification
from repro.android.services.aidl_sources import SERVICE_SPECS
from repro.android.services.connectivity_net import WifiConfiguration
from tests.conftest import DEMO_PACKAGE, launch_demo


#: Methods whose target object is not a top-level service (exercised by
#: the dedicated sensor tests) or that need device state we do not
#: synthesize here.
EXCLUDED = {
    ("ISensorService", "createSensorEventConnection"),
}

#: Prefixes that must run after the constructive calls.
_TEARDOWN_PREFIXES = ("cancel", "release", "disable", "abandon",
                      "unregister", "hide", "revoke", "stop")
#: Destructive calls that must run last of all.
_DESTROY_PREFIXES = ("remove",)


def _phase(method_name: str) -> int:
    if method_name.startswith(_DESTROY_PREFIXES):
        return 2
    if method_name.startswith(_TEARDOWN_PREFIXES):
        return 1
    return 0


def synthesize_arg(device, param_name: str, type_name: str):
    clock = device.clock
    by_name = {
        "triggerAtTime": clock.now + 1_000.0,
        "interval": 50.0,
        "operation": PendingIntent(DEMO_PACKAGE, Intent("SURFACE")),
        "receiver": PendingIntent(DEMO_PACKAGE, Intent("MEDIA")),
        "notification": Notification("surface"),
        "config": WifiConfiguration("surface-ap"),
        "clip": {"text": "surface"},
        "netId": 1,
        "cameraId": 0,
        "authority": "surface-provider",
        "service": Intent("com.surface.SVC"),
        "intent": Intent("com.surface.ACT"),
        "filter": IntentFilter(("SURFACE",)),
        "intent_filter": IntentFilter(("SURFACE",)),
        "id": "com.android.latin",
        "mode": 0,
        "streamType": 3,
        "activityToken": 1,
        "provider": "gps",
        "lockId": "surface-lock",
        "lock_id": "surface-lock",
    }
    if param_name in by_name:
        return by_name[param_name]
    by_type = {
        "int": 1, "long": 1.0, "float": 1.0, "boolean": True,
        "String": "surface-arg", "PendingIntent":
            PendingIntent(DEMO_PACKAGE, Intent("GENERIC")),
        "Intent": Intent("GENERIC"), "IntentFilter":
            IntentFilter(("GENERIC",)),
        "Notification": Notification("generic"),
        "WifiConfiguration": WifiConfiguration("generic-ap"),
        "ClipData": {"text": "generic"},
        "long[]": [100, 50, 100],
        "int[]": [1, 2],
    }
    return by_type.get(type_name, 1)


def decorated_methods(device):
    """(spec, method decl) for every decorated service method, phased."""
    out = []
    for spec in SERVICE_SPECS:
        compiled = device.registry.get(spec.interface)
        for method in compiled.decl.methods:
            if not method.recorded:
                continue
            if (spec.interface, method.name) in EXCLUDED:
                continue
            out.append((spec, method))
    out.sort(key=lambda pair: _phase(pair[1].name))
    return out


def test_every_decorated_method_records_and_replays(device_pair):
    home, guest = device_pair
    thread = launch_demo(home)
    # Preconditions: a provider to connect to, on both devices.
    for dev in (home, guest):
        provider = launch_demo(dev, package="com.surface.provider")
        provider.publish_provider("surface-provider")
    home.pairing_service.pair(guest)

    called = []
    for spec, method in decorated_methods(home):
        manager_proxy = None
        from repro.core.replay.engine import DESCRIPTOR_TO_KEY
        key = DESCRIPTOR_TO_KEY[spec.interface]
        remote = home.service_manager.get_service(thread.process, key)
        proxy = home.registry.get(spec.interface).new_proxy(
            remote, thread.recorder)
        args = [synthesize_arg(home, p.name, p.type_name)
                for p in method.params]
        getattr(proxy, method.name)(*args)
        called.append(f"{spec.interface}.{method.name}")

    # Sanity: the sweep really covered the whole decorated surface.
    assert len(called) >= 50

    from repro.core.extensions import FluxExtensions
    report = home.migration_service.migrate(
        guest, DEMO_PACKAGE,
        extensions=FluxExtensions(content_provider_replay=True))
    assert report.success
    assert report.replay.total_handled == report.record_log_entries
    # Replay reached the guest's services for real:
    assert guest.recorder.extract_app_log(DEMO_PACKAGE)


def test_decorated_surface_inventory_is_stable():
    """The decorated surface is an interface contract: additions are
    deliberate (update this count alongside new decorations)."""
    from repro.android.aidl import InterfaceRegistry
    from repro.android.services.aidl_sources import all_sources
    registry = InterfaceRegistry()
    registry.compile_source(all_sources())
    decorated = sum(
        len(registry.get(spec.interface).meta.recorded_method_names())
        for spec in SERVICE_SPECS)
    assert decorated == 77
