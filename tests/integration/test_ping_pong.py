"""Endurance: ping-pong migrations never corrupt or accumulate state."""

import pytest

from repro.android.app.notification import Notification
from repro.android.device import Device
from repro.android.hardware.profiles import NEXUS_4, NEXUS_7_2013
from repro.sim import SimClock
from repro.sim.rng import RngFactory
from tests.conftest import DEMO_PACKAGE, launch_demo


HOPS = 6


class TestPingPong:
    def _setup(self):
        clock = SimClock()
        factory = RngFactory(71)
        a = Device(NEXUS_4, clock, factory, name="a")
        b = Device(NEXUS_7_2013, clock, factory, name="b")
        thread = launch_demo(a)
        nm = thread.context.get_system_service("notification")
        nm.notify(1, Notification("persistent", "state"))
        a.pairing_service.pair(b)
        b.pairing_service.pair(a)
        return a, b, thread

    def test_six_hops_state_stable(self):
        a, b, thread = self._setup()
        devices = (a, b)
        for hop in range(HOPS):
            source = devices[hop % 2]
            target = devices[(hop + 1) % 2]
            report = source.migration_service.migrate(target, DEMO_PACKAGE)
            assert report.success, f"hop {hop}"
            snapshot = target.service("notification").snapshot(DEMO_PACKAGE)
            assert snapshot["active"] == {1: ("persistent", "state")}, \
                f"hop {hop}"
            # The source keeps nothing behind.
            source_snapshot = source.service("notification").snapshot(
                DEMO_PACKAGE)
            assert source_snapshot["active"] == {}

    def test_log_size_does_not_grow_across_hops(self):
        """Replay re-records the log; the drop rules must keep it at a
        fixed point rather than letting duplicates accumulate."""
        a, b, thread = self._setup()
        devices = (a, b)
        sizes = []
        for hop in range(HOPS):
            source = devices[hop % 2]
            target = devices[(hop + 1) % 2]
            source.migration_service.migrate(target, DEMO_PACKAGE)
            sizes.append(len(target.recorder.extract_app_log(DEMO_PACKAGE)))
        assert len(set(sizes)) == 1      # identical after every hop
        assert sizes[0] == 1             # exactly the surviving notify

    def test_activity_state_stable_across_hops(self):
        a, b, thread = self._setup()
        activity = next(iter(thread.activities.values()))
        activity.saved_state["counter"] = 0
        devices = (a, b)
        for hop in range(HOPS):
            activity.saved_state["counter"] += 1
            source = devices[hop % 2]
            target = devices[(hop + 1) % 2]
            source.migration_service.migrate(target, DEMO_PACKAGE)
        assert activity.saved_state["counter"] == HOPS
        assert activity.window.screen == a.profile.screen  # ended on a? no:
        # HOPS is even, so the app is back where it started.
        assert devices[0].running_packages() == [DEMO_PACKAGE]

    def test_pid_namespaces_do_not_collide(self):
        """Each restore creates a fresh namespace binding the same
        virtual pid; six hops means three namespaces per device."""
        a, b, thread = self._setup()
        devices = (a, b)
        for hop in range(HOPS):
            devices[hop % 2].migration_service.migrate(
                devices[(hop + 1) % 2], DEMO_PACKAGE)
        flux_namespaces = [ns for ns in a.kernel.namespaces()
                           if ns.name.startswith("flux:")]
        assert len(flux_namespaces) == HOPS // 2
