"""Property-based migration testing.

For *any* interleaving of service calls an app makes, the app-visible
service state on the guest after migration must equal the state on the
home device just before migration.  This is the system-level invariant
that Selective Record's drop rules must never violate: pruning the log
is only legal when replaying the pruned log reproduces the same state.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.android.app.intent import Intent, PendingIntent
from repro.android.app.notification import Notification
from repro.android.device import Device
from repro.android.hardware.profiles import NEXUS_4, NEXUS_7_2013
from repro.sim import SimClock
from repro.sim.rng import RngFactory
from tests.conftest import DEMO_PACKAGE, launch_demo


# Each op is (kind, argument); applied through the app's managers.
OPS = st.lists(
    st.one_of(
        st.tuples(st.just("notify"), st.integers(0, 3)),
        st.tuples(st.just("cancel"), st.integers(0, 3)),
        st.tuples(st.just("alarm_set"), st.integers(0, 2)),
        st.tuples(st.just("alarm_remove"), st.integers(0, 2)),
        st.tuples(st.just("volume"), st.integers(0, 15)),
        st.tuples(st.just("wifi_lock"), st.integers(0, 2)),
        st.tuples(st.just("wifi_unlock"), st.integers(0, 2)),
        st.tuples(st.just("clip"), st.integers(0, 5)),
        st.tuples(st.just("wakelock"), st.integers(0, 2)),
        st.tuples(st.just("wakelock_release"), st.integers(0, 2)),
        st.tuples(st.just("focus"), st.integers(0, 2)),
    ),
    max_size=30)


SNAPSHOT_SERVICES = ("notification", "alarm", "audio", "wifi", "clipboard",
                     "power")


def apply_op(thread, device, op) -> None:
    kind, arg = op
    ctx = thread.context
    if kind == "notify":
        ctx.get_system_service("notification").notify(
            arg, Notification(f"n{arg}"))
    elif kind == "cancel":
        ctx.get_system_service("notification").cancel(arg)
    elif kind == "alarm_set":
        alarm = ctx.get_system_service("alarm")
        pi = PendingIntent(DEMO_PACKAGE, Intent("TICK"), request_code=arg)
        alarm.set(alarm.RTC, device.clock.now + 1e6 + arg, pi)
    elif kind == "alarm_remove":
        alarm = ctx.get_system_service("alarm")
        pi = PendingIntent(DEMO_PACKAGE, Intent("TICK"), request_code=arg)
        alarm.cancel(pi)
    elif kind == "volume":
        audio = ctx.get_system_service("audio")
        audio.set_stream_volume(audio.STREAM_MUSIC, arg)
    elif kind == "wifi_lock":
        wifi = ctx.get_system_service("wifi")
        if f"lock-{arg}" not in device.service("wifi").app_state(
                DEMO_PACKAGE)["locks"]:
            wifi.acquire_lock(f"lock-{arg}")
    elif kind == "wifi_unlock":
        if f"lock-{arg}" in device.service("wifi").app_state(
                DEMO_PACKAGE)["locks"]:
            ctx.get_system_service("wifi").release_lock(f"lock-{arg}")
    elif kind == "clip":
        ctx.get_system_service("clipboard").set_text(f"clip-{arg}")
    elif kind == "wakelock":
        power = ctx.get_system_service("power")
        power.acquireWakeLock(f"wl-{arg}", 1, "prop")
    elif kind == "wakelock_release":
        locks = device.service("power").app_state(DEMO_PACKAGE)["wakelocks"]
        if f"wl-{arg}" in locks:
            ctx.get_system_service("power").releaseWakeLock(f"wl-{arg}")
    elif kind == "focus":
        ctx.get_system_service("audio").request_audio_focus(f"client-{arg}")


def snapshots(device):
    return {key: device.service(key).snapshot(DEMO_PACKAGE)
            for key in SNAPSHOT_SERVICES}


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(ops=OPS)
def test_any_call_sequence_survives_migration(ops):
    clock = SimClock()
    factory = RngFactory(77)
    home = Device(NEXUS_4, clock, factory, name="home")
    guest = Device(NEXUS_7_2013, clock, factory, name="guest")
    thread = launch_demo(home)
    home.pairing_service.pair(guest)

    for op in ops:
        apply_op(thread, home, op)

    before = snapshots(home)
    home.migration_service.migrate(guest, DEMO_PACKAGE)
    after = snapshots(guest)

    for key in SNAPSHOT_SERVICES:
        if key == "audio":
            # Audio focus and volumes must match (same hardware range).
            assert after[key]["focus_holder"] == before[key]["focus_holder"]
            assert after[key]["volumes"][3] == before[key]["volumes"][3]
            continue
        assert after[key] == before[key], key


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(ops=OPS)
def test_log_size_bounded_by_live_state(ops):
    """Selective Record's resource claim: the log never grows beyond the
    number of distinct live state items, regardless of call count."""
    clock = SimClock()
    device = Device(NEXUS_4, clock, RngFactory(78), name="solo")
    thread = launch_demo(device)
    for op in ops:
        apply_op(thread, device, op)
    entries = device.recorder.extract_app_log(DEMO_PACKAGE)
    # Bound: 4 notification ids + 3 alarms + 1 volume + 3 wifi locks
    # + 1 clip + 3 wakelocks + 3 focus clients = 18 distinct keys.
    assert len(entries) <= 18
