"""Model-based testing of migrations interleaved with app activity.

A hypothesis state machine drives an app around a ring of three devices
while issuing service calls between hops.  A plain-Python reference
model tracks what the app-visible state *should* be; after every step
the current device's services must agree with the model.  This is the
strongest correctness statement in the suite: no interleaving of use
and migration loses or corrupts state.
"""

import pytest
from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)
from hypothesis import strategies as st

from repro.android.app.intent import Intent, PendingIntent
from repro.android.app.notification import Notification
from repro.android.device import Device
from repro.android.hardware.profiles import NEXUS_7_2013
from repro.sim import SimClock
from repro.sim.rng import RngFactory
from tests.conftest import DEMO_PACKAGE, launch_demo


class MigrationRing(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.clock = SimClock()
        factory = RngFactory(101)
        self.devices = [
            Device(NEXUS_7_2013, self.clock, factory, name=f"dev{i}")
            for i in range(3)]
        self.current = 0
        self.thread = launch_demo(self.devices[0])
        # Reference model of app-visible state.
        self.model_notifications = {}
        self.model_alarms = set()
        self.model_volume = None
        self.model_clip = None
        self.hops = 0

    @property
    def device(self):
        return self.devices[self.current]

    def _ctx(self, key):
        return self.thread.context.get_system_service(key)

    # -- rules -------------------------------------------------------------

    @rule(nid=st.integers(0, 3), title=st.sampled_from(["a", "b", "c"]))
    def notify(self, nid, title):
        self._ctx("notification").notify(nid, Notification(title))
        self.model_notifications[nid] = title

    @rule(nid=st.integers(0, 3))
    def cancel(self, nid):
        self._ctx("notification").cancel(nid)
        self.model_notifications.pop(nid, None)

    @rule(rc=st.integers(0, 2))
    def set_alarm(self, rc):
        alarm = self._ctx("alarm")
        pi = PendingIntent(DEMO_PACKAGE, Intent("RING"), request_code=rc)
        alarm.set(alarm.RTC, self.clock.now + 1e7 + rc, pi)
        self.model_alarms.add(rc)

    @rule(rc=st.integers(0, 2))
    def cancel_alarm(self, rc):
        alarm = self._ctx("alarm")
        pi = PendingIntent(DEMO_PACKAGE, Intent("RING"), request_code=rc)
        alarm.cancel(pi)
        self.model_alarms.discard(rc)

    @rule(volume=st.integers(0, 15))
    def set_volume(self, volume):
        audio = self._ctx("audio")
        audio.set_stream_volume(audio.STREAM_MUSIC, volume)
        self.model_volume = volume

    @rule(text=st.sampled_from(["x", "yy", "zzz"]))
    def set_clip(self, text):
        self._ctx("clipboard").set_text(text)
        self.model_clip = text

    @rule()
    def migrate_to_next(self):
        source = self.device
        target = self.devices[(self.current + 1) % len(self.devices)]
        if not source.pairing_service.is_paired_with(target.name):
            source.pairing_service.pair(target)
        source.migration_service.migrate(target, DEMO_PACKAGE)
        self.current = (self.current + 1) % len(self.devices)
        self.hops += 1
        # Volume and clipboard are per-device state the app re-imposed
        # via replay; the model is unchanged.

    # -- invariants -----------------------------------------------------------

    @invariant()
    def notifications_match_model(self):
        snapshot = self.device.service("notification").snapshot(DEMO_PACKAGE)
        assert snapshot["active"] == {
            nid: (title, "") for nid, title
            in self.model_notifications.items()}

    @invariant()
    def alarms_match_model(self):
        entries = self.device.service("alarm").active_alarms(DEMO_PACKAGE)
        assert {e.operation.request_code for e in entries} == \
            self.model_alarms

    @invariant()
    def volume_matches_model(self):
        if self.model_volume is None:
            return
        audio = self.device.service("audio")
        assert audio.snapshot(DEMO_PACKAGE)["volumes"][3] == \
            self.model_volume

    @invariant()
    def clipboard_matches_model(self):
        if self.model_clip is None:
            return
        clipboard = self.device.service("clipboard")
        assert clipboard.getPrimaryClip(DEMO_PACKAGE)["text"] == \
            self.model_clip

    @invariant()
    def app_runs_exactly_once(self):
        running = [d.name for d in self.devices
                   if d.thread_of(DEMO_PACKAGE) is not None]
        assert running == [self.device.name]


MigrationRing.TestCase.settings = settings(
    max_examples=12, stateful_step_count=16, deadline=None)
TestMigrationRing = MigrationRing.TestCase
