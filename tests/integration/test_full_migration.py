"""End-to-end migrations of the Table 3 apps with state verification.

The central correctness check: for every service that holds app-specific
state, the snapshot on the guest after migration must equal the snapshot
on the home device just before migration (modulo documented device
adaptations like volume rescale).
"""

import pytest

from repro.android.device import Device
from repro.android.hardware.profiles import NEXUS_4, NEXUS_7_2012, NEXUS_7_2013
from repro.apps import EXPECTED_FAILURES, MIGRATABLE_APPS, TOP_APPS
from repro.core.cria.errors import MigrationError
from repro.sim import SimClock
from repro.sim.rng import RngFactory


#: Services whose app-visible snapshots must survive migration verbatim.
SNAPSHOT_SERVICES = ("notification", "alarm", "wifi", "location",
                     "clipboard", "power", "camera", "connectivity",
                     "sensor", "activity")


def snapshots(device, package):
    return {key: device.service(key).snapshot(package)
            for key in SNAPSHOT_SERVICES}


def fresh_pair(home_profile=NEXUS_4, guest_profile=NEXUS_7_2013, seed=11):
    clock = SimClock()
    factory = RngFactory(seed)
    home = Device(home_profile, clock, factory, name="home")
    guest = Device(guest_profile, clock, factory, name="guest")
    return home, guest


class TestPerAppStateEquality:
    @pytest.mark.parametrize("spec", MIGRATABLE_APPS, ids=lambda s: s.title)
    def test_state_survives_migration(self, spec):
        home, guest = fresh_pair()
        thread = spec.install_and_launch(home)
        home.pairing_service.pair(guest)
        before = snapshots(home, spec.package)
        report = home.migration_service.migrate(guest, spec.package)
        after = snapshots(guest, spec.package)
        for service_key in SNAPSHOT_SERVICES:
            if service_key == "alarm":
                # Alarm trigger times are preserved; entries may differ
                # only by the repeating roll-forward adaptation.
                before_actions = [a for a, _, _ in
                                  before["alarm"].get("alarms", [])]
                after_actions = [a for a, _, _ in
                                 after["alarm"].get("alarms", [])]
                assert after_actions == before_actions, spec.title
                continue
            assert after[service_key] == before[service_key], \
                f"{spec.title}: {service_key} state diverged"
        assert report.success

    @pytest.mark.parametrize(
        "title", ["Facebook", "Subway Surfers"])
    def test_expected_failures_fail_with_right_reason(self, title):
        from repro.apps import app_by_title
        spec = app_by_title(title)
        home, guest = fresh_pair()
        spec.install_and_launch(home)
        home.pairing_service.pair(guest)
        with pytest.raises(MigrationError) as excinfo:
            home.migration_service.migrate(guest, spec.package)
        assert excinfo.value.reason is EXPECTED_FAILURES[spec.package]


class TestHeterogeneousMigrations:
    def test_tablet_to_phone_with_different_kernels(self):
        """Nexus 7 (2012, kernel 3.1) -> Nexus 4 (kernel 3.4)."""
        from repro.apps import app_by_title
        spec = app_by_title("Netflix")
        home, guest = fresh_pair(NEXUS_7_2012, NEXUS_4)
        assert home.kernel.version != guest.kernel.version
        spec.install_and_launch(home)
        home.pairing_service.pair(guest)
        report = home.migration_service.migrate(guest, spec.package)
        assert report.success
        thread = guest.thread_of(spec.package)
        activity = next(iter(thread.activities.values()))
        assert activity.window.screen == guest.profile.screen

    def test_gl_game_across_different_gpus(self):
        """Bubble Witch (GL) from ULP GeForce to Adreno 320."""
        from repro.apps import app_by_title
        spec = app_by_title("Bubble Witch Saga")
        home, guest = fresh_pair(NEXUS_7_2012, NEXUS_4)
        assert home.profile.gpu_name != guest.profile.gpu_name
        thread = spec.install_and_launch(home)
        home.pairing_service.pair(guest)
        home.migration_service.migrate(guest, spec.package)
        # The app's GL context now lives on the guest's vendor library.
        activity = next(iter(thread.activities.values()))
        gl_views = activity.view_root.gl_surface_views()
        assert gl_views
        activity.render()
        assert all(v.has_live_context for v in gl_views)
        assert guest.vendor_gl.live_context_count(thread.process.pid) >= 1
        assert home.vendor_gl.live_context_count(thread.process.pid) == 0

    def test_app_internal_state_survives(self):
        from repro.apps import app_by_title
        spec = app_by_title("Candy Crush Saga")
        home, guest = fresh_pair()
        thread = spec.install_and_launch(home)
        activity = next(iter(thread.activities.values()))
        assert activity.saved_state["lives"] == 2   # set by the workload
        home.pairing_service.pair(guest)
        home.migration_service.migrate(guest, spec.package)
        activity = next(iter(thread.activities.values()))
        assert activity.saved_state["lives"] == 2
        assert activity.saved_state["level"] == 181


class TestChainedMigrations:
    def test_three_device_chain(self):
        """home -> guest -> third device: the guest's record log must be
        complete enough to migrate again."""
        from repro.apps import app_by_title
        spec = app_by_title("WhatsApp")
        clock = SimClock()
        factory = RngFactory(13)
        home = Device(NEXUS_4, clock, factory, name="home")
        mid = Device(NEXUS_7_2013, clock, factory, name="mid")
        far = Device(NEXUS_7_2012, clock, factory, name="far")
        thread = spec.install_and_launch(home)
        home.pairing_service.pair(mid)
        home.migration_service.migrate(mid, spec.package)
        before = snapshots(mid, spec.package)

        mid.pairing_service.pair(far)
        report = mid.migration_service.migrate(far, spec.package)
        assert report.success
        after = snapshots(far, spec.package)
        assert after["notification"] == before["notification"]
        alarm_actions = [a for a, _, _ in after["alarm"]["alarms"]]
        assert alarm_actions == [a for a, _, _ in before["alarm"]["alarms"]]

    def test_sensor_app_remigrates(self):
        from repro.apps import app_by_title
        spec = app_by_title("Flappy Bird")
        clock = SimClock()
        factory = RngFactory(17)
        home = Device(NEXUS_4, clock, factory, name="home")
        mid = Device(NEXUS_7_2013, clock, factory, name="mid")
        far = Device(NEXUS_4, clock, factory, name="far")
        thread = spec.install_and_launch(home)
        home.pairing_service.pair(mid)
        home.migration_service.migrate(mid, spec.package)
        mid.pairing_service.pair(far)
        mid.migration_service.migrate(far, spec.package)
        # Sensor events still reach the app after two migrations.
        sensors = thread.context.get_system_service("sensor")
        accel = sensors.default_sensor("accelerometer")
        assert far.service("sensor").inject_event(accel.handle, b"x") == 1
        assert sensors.poll_events() == [b"x"]


class TestAllAppsSweepOnePair:
    def test_sixteen_of_eighteen(self):
        home, guest = fresh_pair(NEXUS_7_2013, NEXUS_7_2013, seed=23)
        for spec in TOP_APPS:
            spec.install(home)
        home.pairing_service.pair(guest)
        outcomes = {}
        for spec in TOP_APPS:
            spec.install_and_launch(home)
            try:
                home.migration_service.migrate(guest, spec.package)
                outcomes[spec.package] = "ok"
            except MigrationError as error:
                outcomes[spec.package] = error.reason
                home.terminate_app(spec.package)
        migrated = [p for p, o in outcomes.items() if o == "ok"]
        assert len(migrated) == 16
        for package, reason in EXPECTED_FAILURES.items():
            assert outcomes[package] is reason
