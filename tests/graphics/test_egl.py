"""EGL/vendor-library model and the HardwareRenderer."""

import pytest

from repro.android.graphics.egl import (
    GenericGlLibrary,
    GlError,
    VendorGlLibrary,
)
from repro.android.graphics.renderer import HardwareRenderer
from repro.android.graphics.surface import ScreenConfig, Surface, SurfaceError, Window
from repro.android.kernel import Kernel
from repro.android.kernel.memory import RegionKind
from repro.sim import SimClock


@pytest.fixture
def kernel():
    return Kernel(SimClock())


@pytest.fixture
def process(kernel):
    return kernel.create_process("app", package="app")


@pytest.fixture
def gl(kernel):
    return GenericGlLibrary(VendorGlLibrary("Adreno 320", kernel))


class TestVendorLibrary:
    def test_load_maps_vendor_region(self, gl, process):
        gl.egl_initialize(process)
        assert process.memory.regions(RegionKind.GL_VENDOR)

    def test_context_requires_initialize(self, gl, process):
        with pytest.raises(GlError):
            gl.egl_create_context(process)

    def test_resources_charge_pmem(self, gl, kernel, process):
        gl.egl_initialize(process)
        context = gl.egl_create_context(process)
        context.create_resource("texture", 4096)
        assert kernel.pmem.allocations_of(process.pid)
        context.destroy()
        assert kernel.pmem.allocations_of(process.pid) == []

    def test_unload_refused_with_live_context(self, gl, process):
        gl.egl_initialize(process)
        gl.egl_create_context(process)
        with pytest.raises(GlError):
            gl.egl_unload(process)

    def test_unload_after_terminate(self, gl, process):
        gl.egl_initialize(process)
        gl.egl_create_context(process)
        gl.egl_create_context(process)
        assert gl.egl_terminate_contexts(process) == 2
        gl.egl_unload(process)
        assert process.memory.regions(RegionKind.GL_VENDOR) == []
        assert not gl.is_initialized(process)

    def test_rebind_vendor_only_when_unused(self, gl, kernel, process):
        other_vendor = VendorGlLibrary("ULP GeForce", kernel)
        gl.egl_initialize(process)
        with pytest.raises(GlError):
            gl.rebind_vendor(other_vendor)
        gl.egl_terminate_contexts(process)
        gl.egl_unload(process)
        gl.rebind_vendor(other_vendor)
        assert gl.vendor is other_vendor

    def test_destroyed_context_rejects_use(self, gl, process):
        gl.egl_initialize(process)
        context = gl.egl_create_context(process)
        context.destroy()
        with pytest.raises(GlError):
            context.create_resource("texture", 16)
        context.destroy()   # idempotent


class TestHardwareRenderer:
    def test_initialize_is_conditional(self, gl, process):
        renderer = HardwareRenderer(process, gl)
        renderer.initialize()
        context = renderer.context
        renderer.initialize()
        assert renderer.context is context   # idempotent

    def test_caches_flushed_on_trim(self, gl, process):
        renderer = HardwareRenderer(process, gl)
        renderer.initialize()
        assert renderer.cache_bytes() > 0
        renderer.start_trim_memory(80)
        assert renderer.cache_bytes() == 0

    def test_terminate_reports_full_uninitialize(self, gl, process):
        renderer = HardwareRenderer(process, gl)
        renderer.initialize()
        assert renderer.terminate_and_uninitialize() is True
        assert not renderer.enabled

    def test_terminate_with_foreign_context_reports_false(self, gl, process):
        renderer = HardwareRenderer(process, gl)
        renderer.initialize()
        gl.egl_create_context(process)   # e.g. a preserved GLSurfaceView
        assert renderer.terminate_and_uninitialize() is False


class TestSurfaces:
    def test_surface_sized_by_screen(self, process):
        screen = ScreenConfig(768, 1280, 320)
        window = Window("pkg", process, screen)
        region = process.memory.regions(RegionKind.SURFACE)[0]
        assert region.size == screen.buffer_bytes() == 768 * 1280 * 4 * 2

    def test_destroy_and_recreate_for_new_screen(self, process):
        small = ScreenConfig(768, 1280, 320)
        large = ScreenConfig(1920, 1200, 323)
        window = Window("pkg", process, small)
        window.destroy_surface()
        assert not window.has_surface
        assert process.memory.regions(RegionKind.SURFACE) == []
        surface = window.recreate_surface(large)
        assert surface.screen == large
        region = process.memory.regions(RegionKind.SURFACE)[0]
        assert region.size == large.buffer_bytes()

    def test_double_surface_rejected(self, process):
        window = Window("pkg", process, ScreenConfig(100, 100, 160))
        with pytest.raises(SurfaceError):
            window.recreate_surface()

    def test_render_on_destroyed_surface_rejected(self, process):
        surface = Surface(process, ScreenConfig(100, 100, 160))
        surface.destroy()
        with pytest.raises(SurfaceError):
            surface.render_frame()
