"""The flux-sim command-line front end."""

import pytest

from repro.cli import main


class TestListing:
    def test_devices(self, capsys):
        assert main(["devices"]) == 0
        out = capsys.readouterr().out
        assert "Nexus 7 (2013)" in out and "Adreno 320" in out

    def test_apps(self, capsys):
        assert main(["apps"]) == 0
        out = capsys.readouterr().out
        assert "Candy Crush Saga" in out and "com.whatsapp" in out


class TestMigrate:
    def test_successful_migration(self, capsys):
        assert main(["migrate", "--app", "WhatsApp"]) == 0
        out = capsys.readouterr().out
        assert "migrated WhatsApp" in out
        assert "transfer" in out and "TOTAL" in out

    def test_substring_match(self, capsys):
        assert main(["migrate", "--app", "zedge"]) == 0
        assert "migrated ZEDGE" in capsys.readouterr().out

    def test_refusal_exits_nonzero(self, capsys):
        assert main(["migrate", "--app", "Facebook"]) == 1
        out = capsys.readouterr().out
        assert "REFUSED" in out and "multi-process" in out

    def test_extensions_lift_refusal(self, capsys):
        assert main(["migrate", "--app", "Facebook",
                     "--extensions", "multi_process"]) == 0
        assert "migrated Facebook" in capsys.readouterr().out

    def test_unknown_app(self):
        with pytest.raises(SystemExit):
            main(["migrate", "--app", "Angry Birds"])

    def test_unknown_extension(self):
        with pytest.raises(SystemExit):
            main(["migrate", "--app", "WhatsApp",
                  "--extensions", "teleportation"])

    def test_gps_device_pair_flags(self, capsys):
        assert main(["migrate", "--app", "GroupOn", "--home", "nexus4",
                     "--guest", "nexus7"]) == 0
        out = capsys.readouterr().out
        assert "adapted" in out   # GPS -> network fallback noted


class TestPair:
    def test_pairing_numbers(self, capsys):
        assert main(["pair", "--home", "nexus7",
                     "--guest", "nexus7_2013"]) == 0
        out = capsys.readouterr().out
        assert "215.0 MB" in out
        assert "123.0 MB" in out
        assert "56.0 MB" in out or "55.9 MB" in out


class TestExperiments:
    def test_single_experiment(self, capsys):
        assert main(["experiments", "fig17"]) == 0
        assert "CDF(1 MB)" in capsys.readouterr().out

    def test_unknown_experiment(self, capsys):
        assert main(["experiments", "fig99"]) == 2


class TestTimelineAndInterface:
    def test_timeline_rendering(self, capsys):
        assert main(["migrate", "--app", "Netflix", "--timeline"]) == 0
        out = capsys.readouterr().out
        assert "user-perceived" in out and "|" in out

    def test_interface_subcommand(self, capsys):
        assert main(["interface", "alarm"]) == 0
        out = capsys.readouterr().out
        assert "@replayproxy flux.recordreplay.Proxies.alarmMgrSet" in out

    def test_interface_unknown_service(self):
        import pytest
        with pytest.raises(SystemExit):
            main(["interface", "teleporter"])


class TestTimelineModule:
    def test_sweep_strip(self):
        from repro.core.migration.timeline import render_sweep_strip
        from repro.experiments.harness import run_pair
        from repro.android.hardware.profiles import NEXUS_4, NEXUS_7_2013
        from repro.apps import app_by_title
        reports = run_pair(NEXUS_4, NEXUS_7_2013,
                           [app_by_title("ZEDGE"), app_by_title("eBay")],
                           seed=3).reports
        strip = render_sweep_strip(list(reports.values()))
        assert "legend" in strip
        assert strip.count("|") >= 4

    def test_empty_inputs(self):
        from repro.core.migration.timeline import render_sweep_strip
        assert "no reports" in render_sweep_strip([])


class TestFaultInjectionFlags:
    def test_link_drop_rolls_back(self, capsys):
        assert main(["migrate", "--app", "WhatsApp",
                     "--drop-link-after-bytes", "1000000"]) == 1
        out = capsys.readouterr().out
        assert "FAULTED in transfer stage" in out
        assert "link-down" in out
        assert "still running" in out and "guest processes: 0" in out

    def test_restore_fault_rolls_back(self, capsys):
        assert main(["migrate", "--app", "WhatsApp",
                     "--fail-restore-after", "3"]) == 1
        out = capsys.readouterr().out
        assert "FAULTED in restore stage" in out
        assert "restore-failed" in out and "guest processes: 0" in out


class TestTraceExport:
    def test_trace_out_nests_five_stages(self, capsys, tmp_path):
        import json

        from repro.core.migration.migration import STAGES

        path = tmp_path / "trace.json"
        assert main(["migrate", "--app", "WhatsApp",
                     "--trace-out", str(path)]) == 0
        out = capsys.readouterr().out
        assert f"wrote Chrome trace to {path}" in out
        doc = json.loads(path.read_text())
        events = doc["traceEvents"]
        [migration] = [e for e in events if e["cat"] == "migration"]
        stages = [e for e in events if e["cat"] == "stage"]
        assert [e["name"] for e in stages] == list(STAGES)
        # Stage intervals nest inside the migration span.
        span_end = migration["ts"] + migration["dur"]
        for stage in stages:
            assert stage["ts"] >= migration["ts"]
            assert stage["ts"] + stage["dur"] <= span_end + 1e-3

    def test_trace_durations_match_report_stages(self, tmp_path):
        import json

        from repro.android.device import Device
        from repro.android.hardware.profiles import NEXUS_4, NEXUS_7_2013
        from repro.apps import app_by_title
        from repro.sim import SimClock
        from repro.sim.rng import RngFactory

        clock = SimClock()
        factory = RngFactory(0)
        home = Device(NEXUS_4, clock, factory, name="home")
        guest = Device(NEXUS_7_2013, clock, factory, name="guest")
        spec = app_by_title("WhatsApp")
        spec.install_and_launch(home)
        home.pairing_service.pair(guest)
        report = home.migration_service.migrate(guest, spec.package)
        path = tmp_path / "trace.json"
        home.tracer.write_chrome_trace(str(path))
        doc = json.loads(path.read_text())
        durations = {e["name"]: e["dur"] for e in doc["traceEvents"]
                     if e["cat"] == "stage"}
        for stage, seconds in report.stages.items():
            assert durations[stage] == pytest.approx(seconds * 1e6,
                                                     abs=1e-2)

    def test_trace_written_on_fault_too(self, capsys, tmp_path):
        import json

        path = tmp_path / "faulted.json"
        assert main(["migrate", "--app", "WhatsApp",
                     "--drop-link-after-bytes", "1000000",
                     "--trace-out", str(path)]) == 1
        doc = json.loads(path.read_text())
        [migration] = [e for e in doc["traceEvents"]
                       if e["cat"] == "migration"]
        assert migration["args"]["faulted_stage"] == "transfer"
        names = [e["name"] for e in doc["traceEvents"]
                 if e["cat"] == "stage"]
        assert names == ["preparation", "checkpoint", "transfer"]

    def test_trace_schema_validates_per_phase(self, tmp_path):
        """Round-trip through json.load and check the required keys of
        every phase the export emits: complete spans ("X"), counters
        ("C") and the event log's instants ("i")."""
        import json

        path = tmp_path / "trace.json"
        assert main(["migrate", "--app", "WhatsApp",
                     "--trace-out", str(path)]) == 0
        with open(path, "r", encoding="utf-8") as handle:
            doc = json.load(handle)
        assert doc["displayTimeUnit"] == "ms"
        events = doc["traceEvents"]
        phases = {e["ph"] for e in events}
        assert phases == {"X", "C", "i"}
        for event in events:
            for key in ("name", "cat", "ph", "ts", "pid", "tid"):
                assert key in event, (event["ph"], key)
            assert isinstance(event["ts"], (int, float))
            if event["ph"] == "X":
                assert "dur" in event and event["dur"] >= 0
            elif event["ph"] == "C":
                assert "args" in event
                assert all(isinstance(v, (int, float))
                           for v in event["args"].values())
            elif event["ph"] == "i":
                assert event["s"] == "t"   # thread-scoped instant
                assert event["cat"] == "event"
                assert "seq" in event["args"]
                assert "device" in event["args"]

    def test_trace_instants_interleave_with_spans(self, tmp_path):
        import json

        path = tmp_path / "trace.json"
        assert main(["migrate", "--app", "WhatsApp",
                     "--trace-out", str(path)]) == 0
        doc = json.loads(path.read_text())
        events = doc["traceEvents"]
        [migration] = [e for e in events if e["cat"] == "migration"]
        instants = [e for e in events if e["ph"] == "i"]
        span_end = migration["ts"] + migration["dur"]
        inside = [i for i in instants
                  if migration["ts"] <= i["ts"] <= span_end + 1e-3]
        assert inside, "no event instants inside the migration span"
        kinds = {i["name"] for i in inside}
        assert "stage.start" in kinds and "migration.done" in kinds


class TestEventsExport:
    def test_migrate_events_out(self, capsys, tmp_path):
        from repro.sim.events import read_jsonl

        path = tmp_path / "events.jsonl"
        assert main(["migrate", "--app", "WhatsApp",
                     "--events-out", str(path)]) == 0
        out = capsys.readouterr().out
        assert f"wrote" in out and str(path) in out
        events = read_jsonl(str(path))
        assert events
        kinds = [e["kind"] for e in events]
        assert "migration.start" in kinds and "migration.done" in kinds
        assert {e["device"] for e in events} == {"home", "guest"}
        # The merged stream is causally ordered.
        keys = [(e["t"], e["device"], e["seq"]) for e in events]
        assert keys == sorted(keys)

    def test_migrate_events_out_on_fault(self, capsys, tmp_path):
        from repro.sim.events import read_jsonl

        path = tmp_path / "events.jsonl"
        assert main(["migrate", "--app", "WhatsApp",
                     "--drop-link-after-bytes", "1000000",
                     "--events-out", str(path)]) == 1
        kinds = [e["kind"] for e in read_jsonl(str(path))]
        assert "link.fault" in kinds
        assert "stage.fault" in kinds
        assert "migration.rolled_back" in kinds

    def test_sweep_events_out(self, capsys, tmp_path):
        from repro.sim.events import read_jsonl

        path = tmp_path / "sweep_events.jsonl"
        assert main(["sweep", "--events-out", str(path)]) == 0
        events = read_jsonl(str(path))
        assert events
        assert all("pair" in e for e in events)
        assert len({e["pair"] for e in events}) == 4


class TestScenario:
    def test_default_demo_queues_two_concurrent_migrations(self, capsys):
        assert main(["scenario"]) == 0
        out = capsys.readouterr().out
        assert "2 devices, 2 sessions" in out
        assert out.count("MIGRATED") == 2

    def test_explicit_routes_and_stagger(self, capsys):
        assert main(["scenario",
                     "--device", "h1=nexus4", "--device", "g1=nexus7_2013",
                     "--device", "h2=nexus4", "--device", "g2=nexus7_2013",
                     "--migrate", "h1:g1:bubble",
                     "--migrate", "h2:g2:bubble@0.5"]) == 0
        out = capsys.readouterr().out
        assert "h1->g1" in out and "h2->g2" in out
        assert out.count("MIGRATED") == 2

    def test_refuse_admission_exits_nonzero(self, capsys):
        assert main(["scenario", "--admission", "refuse"]) == 1
        out = capsys.readouterr().out
        assert "REJECTED" in out and "already hosting" in out

    def test_telemetry_exports_and_session_explain(self, capsys, tmp_path):
        import json

        from repro.sim.events import read_jsonl

        events = tmp_path / "scenario_events.jsonl"
        metrics = tmp_path / "scenario_metrics.json"
        assert main(["scenario", "--events-out", str(events),
                     "--metrics-out", str(metrics)]) == 0
        out = capsys.readouterr().out
        document = json.loads(metrics.read_text())
        assert document["scenario"]["admission"] == "queue"
        assert len(document["scenario"]["sessions"]) == 2
        assert all(row["status"] == "migrated"
                   for row in document["scenario"]["sessions"])
        labels = [row["session"]
                  for row in document["scenario"]["sessions"]]
        stream = read_jsonl(str(events))
        assert {e["attrs"].get("session") for e in stream
                if e["kind"] == "migration.start"} == set(labels)
        # explain segments the interleaved log by session label.
        for label in labels:
            assert main(["explain", str(events),
                         "--session", label]) == 0
            explained = capsys.readouterr().out
            assert f"session={label}" in explained
            assert "SUCCEEDED" in explained

    def test_bad_specs_rejected(self):
        with pytest.raises(SystemExit):
            main(["scenario", "--device", "nexus4"])  # no NAME=
        with pytest.raises(SystemExit):
            main(["scenario", "--migrate", "home:guest"])  # no app
        with pytest.raises(SystemExit):
            main(["scenario", "--migrate", "home:guest:bubble@soon"])
