"""Input pipeline routing and the launcher model."""

import pytest

from repro.android.app.activity import LifecycleError
from repro.android.app.input_pipeline import SystemGestureNavigator
from repro.android.app.launcher import IconKind, LauncherError
from repro.core.migration.consistency import ConsistencyConflict
from repro.core.migration.gesture import TouchEvent
from tests.conftest import DEMO_PACKAGE, launch_demo


class TestInputDispatch:
    def test_tap_reaches_foreground_activity(self, device, demo_thread):
        device.input_dispatcher.inject_tap(100, 200)
        activity = next(iter(demo_thread.activities.values()))
        assert len(activity.touch_events) == 2
        assert activity.touch_events[0].action == "down"

    def test_background_app_gets_no_input(self, device, clock, demo_thread):
        device.activity_service.background_app(DEMO_PACKAGE)
        clock.advance(1.0)
        record = device.input_dispatcher.inject(
            TouchEvent(clock.now, 0, 10, 10, "down"))
        assert record.consumed_by == "dropped"

    def test_paused_activity_rejects_direct_dispatch(self, clock,
                                                     demo_thread):
        activity = next(iter(demo_thread.activities.values()))
        demo_thread.pause_all()
        with pytest.raises(LifecycleError):
            activity.dispatch_touch(TouchEvent(0.0, 0, 1, 1, "down"))

    def test_on_touch_hook(self, device):
        from tests.conftest import DemoActivity

        class Touchy(DemoActivity):
            def __init__(self, *args, **kwargs):
                super().__init__(*args, **kwargs)
                self.taps = 0

            def on_touch(self, event):
                if event.action == "up":
                    self.taps += 1

        thread = launch_demo(device, package="com.touchy",
                             activity_cls=Touchy)
        device.input_dispatcher.inject_tap(5, 5)
        activity = next(iter(thread.activities.values()))
        assert activity.taps == 1


class TestSystemGesture:
    def _swipe(self, device, fingers=(0, 1), dy=-400.0):
        dispatcher = device.input_dispatcher
        now = device.clock.now
        for pointer in fingers:
            dispatcher.inject(TouchEvent(now, pointer, 100 + pointer * 50,
                                         600, "down"))
        for pointer in fingers:
            dispatcher.inject(TouchEvent(now + 0.2, pointer,
                                         100 + pointer * 50, 600 + dy, "up"))

    def test_two_finger_swipe_opens_menu_and_is_consumed(self, device,
                                                         demo_thread):
        opened = []
        SystemGestureNavigator(device, lambda: opened.append(True))
        self._swipe(device)
        assert opened == [True]
        activity = next(iter(demo_thread.activities.values()))
        # Android semantics: the app saw the first finger's down, then an
        # ACTION_CANCEL when the system took the gesture over — never the
        # swipe itself.
        assert [e.action for e in activity.touch_events] == ["down",
                                                             "cancel"]

    def test_single_finger_passes_through(self, device, demo_thread):
        opened = []
        SystemGestureNavigator(device, lambda: opened.append(True))
        self._swipe(device, fingers=(0,))
        assert opened == []
        activity = next(iter(demo_thread.activities.values()))
        assert len(activity.touch_events) == 2

    def test_full_swipe_menu_migrate_flow(self, device_pair):
        """Touch events -> gesture -> menu -> migration, end to end."""
        from repro.core.migration.ui import MigrationTargetMenu
        home, guest = device_pair
        launch_demo(home)
        home.pairing_service.pair(guest)
        menu = MigrationTargetMenu(home, targets=[guest])

        def open_menu():
            decision = menu.choose(0)
            target = menu.target_by_name(decision.target_name)
            home.migration_service.migrate(guest, DEMO_PACKAGE)

        SystemGestureNavigator(home, open_menu)
        self._swipe(home)
        assert guest.running_packages() == [DEMO_PACKAGE]
        assert menu.decisions


class TestLauncher:
    def test_native_icon(self, device, demo_thread):
        icons = {i.package: i for i in device.launcher.icons()}
        icon = icons[DEMO_PACKAGE]
        assert icon.kind is IconKind.NATIVE and icon.running

    def test_migrated_icon_appears_on_guest(self, device_pair):
        home, guest = device_pair
        launch_demo(home)
        home.pairing_service.pair(guest)
        assert guest.launcher.migrated_icons() == []   # wrapper is bare
        home.migration_service.migrate(guest, DEMO_PACKAGE)
        (icon,) = guest.launcher.migrated_icons()
        assert icon.package == DEMO_PACKAGE
        assert icon.running

    def test_start_foregrounds_running_app(self, device, clock, demo_thread):
        device.activity_service.background_app(DEMO_PACKAGE)
        clock.advance(1.0)
        device.launcher.start(DEMO_PACKAGE)
        assert not demo_thread.in_background

    def test_native_start_of_migrated_out_app_prompts(self, device_pair):
        home, guest = device_pair
        launch_demo(home)
        home.pairing_service.pair(guest)
        home.migration_service.migrate(guest, DEMO_PACKAGE)
        with pytest.raises(ConsistencyConflict):
            home.launcher.start(DEMO_PACKAGE)

    def test_bare_wrapper_cannot_start(self, device_pair):
        home, guest = device_pair
        from tests.conftest import install_demo
        install_demo(home)
        home.pairing_service.pair(guest)
        with pytest.raises(LauncherError):
            guest.launcher.start(DEMO_PACKAGE)
