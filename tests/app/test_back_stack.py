"""Back-stack semantics and migrating multi-activity apps."""

import pytest

from repro.android.app.activity import ActivityState
from repro.android.app.views import View, ViewGroup
from tests.conftest import DEMO_PACKAGE, DemoActivity, launch_demo


class DetailActivity(DemoActivity):
    """A second screen pushed on top of the main one."""

    def on_create(self, saved_state):
        root = ViewGroup("detail-root")
        root.add_view(View("detail-body"))
        self.set_content_view(root)
        self.saved_state.setdefault("item", 42)


class TestBackStack:
    def test_launch_pauses_previous(self, demo_thread):
        main = next(iter(demo_thread.activities.values()))
        detail = demo_thread.launch_activity(DetailActivity)
        assert main.state is ActivityState.PAUSED
        assert detail.state is ActivityState.RESUMED
        assert demo_thread.top_activity() is detail

    def test_finish_pops_and_resumes_below(self, device, demo_thread):
        main = next(iter(demo_thread.activities.values()))
        detail = demo_thread.launch_activity(DetailActivity)
        device.activity_service.finishActivity(demo_thread.process,
                                               detail.token)
        assert detail.state is ActivityState.DESTROYED
        assert main.state is ActivityState.RESUMED
        assert demo_thread.top_activity() is main

    def test_foreground_resumes_only_top(self, device, clock, demo_thread):
        main = next(iter(demo_thread.activities.values()))
        detail = demo_thread.launch_activity(DetailActivity)
        device.activity_service.background_app(DEMO_PACKAGE)
        clock.advance(1.0)
        assert main.state is ActivityState.STOPPED
        assert detail.state is ActivityState.STOPPED
        device.activity_service.foreground_app(DEMO_PACKAGE)
        assert detail.state is ActivityState.RESUMED
        assert main.state is ActivityState.STOPPED
        assert detail.window.has_surface
        assert not main.window.has_surface   # below-top stays surfaceless

    def test_stack_order_is_launch_order(self, demo_thread):
        a2 = demo_thread.launch_activity(DetailActivity, name="a2")
        a3 = demo_thread.launch_activity(DetailActivity, name="a3")
        names = [a.name for a in demo_thread.back_stack()]
        assert names[-2:] == ["a2", "a3"]


class TestMultiActivityMigration:
    def test_two_activity_app_migrates_with_stack(self, device_pair):
        home, guest = device_pair
        thread = launch_demo(home)
        main = next(iter(thread.activities.values()))
        detail = thread.launch_activity(DetailActivity)
        detail.saved_state["item"] = 99
        home.pairing_service.pair(guest)
        report = home.migration_service.migrate(guest, DEMO_PACKAGE)
        assert report.success
        # The stack shape survives: detail on top, main beneath.
        assert thread.top_activity().name == "DetailActivity"
        assert thread.top_activity().state is ActivityState.RESUMED
        assert main.state is ActivityState.STOPPED
        assert thread.top_activity().saved_state["item"] == 99
        assert thread.top_activity().window.screen == guest.profile.screen

    def test_pop_after_migration_resumes_below_on_guest(self, device_pair):
        home, guest = device_pair
        thread = launch_demo(home)
        main = next(iter(thread.activities.values()))
        detail = thread.launch_activity(DetailActivity)
        home.pairing_service.pair(guest)
        home.migration_service.migrate(guest, DEMO_PACKAGE)
        guest.activity_service.finishActivity(thread.process, detail.token)
        assert main.state is ActivityState.RESUMED
        assert main.window.has_surface
        assert main.window.screen == guest.profile.screen
