"""View hierarchy, activity lifecycle, the trim-memory chain."""

import pytest

from repro.android.app.activity import ActivityState, LifecycleError
from repro.android.app.views import GLSurfaceView, View, ViewError, ViewGroup
from repro.android.graphics.renderer import (
    TRIM_MEMORY_COMPLETE,
    TRIM_MEMORY_UI_HIDDEN,
)
from repro.android.kernel.memory import RegionKind
from tests.conftest import DEMO_PACKAGE, DemoActivity, launch_demo


class TestViews:
    def test_tree_iteration(self):
        root = ViewGroup("root")
        child_group = ViewGroup("group")
        child_group.add_view(View("leaf"))
        root.add_view(child_group)
        root.add_view(View("other"))
        names = [v.name for v in root.iter_tree()]
        assert names == ["root", "group", "leaf", "other"]

    def test_reparenting_rejected(self):
        a, b = ViewGroup("a"), ViewGroup("b")
        leaf = View("leaf")
        a.add_view(leaf)
        with pytest.raises(ViewError):
            b.add_view(leaf)

    def test_remove_view(self):
        group = ViewGroup("g")
        leaf = group.add_view(View("leaf"))
        group.remove_view(leaf)
        assert leaf.parent is None
        with pytest.raises(ViewError):
            group.remove_view(leaf)

    def test_draw_marks_valid_and_allocates_display_lists(self, demo_thread):
        activity = next(iter(demo_thread.activities.values()))
        root = activity.view_root
        root.invalidate_all()
        assert root.all_views_invalid()
        activity.render()
        assert all(v.valid for v in root.content.iter_tree())


class TestActivityLifecycle:
    def test_launch_resumes_and_draws(self, demo_thread):
        activity = next(iter(demo_thread.activities.values()))
        assert activity.state is ActivityState.RESUMED
        assert activity.window.surface.frames_rendered >= 1
        assert [s for s, _ in activity.lifecycle_log] == \
            [ActivityState.RESUMED]

    def test_illegal_transition_rejected(self, clock, demo_thread):
        activity = next(iter(demo_thread.activities.values()))
        with pytest.raises(LifecycleError):
            activity.perform_transition(ActivityState.STOPPED, clock)

    def test_render_requires_resumed(self, clock, demo_thread):
        activity = next(iter(demo_thread.activities.values()))
        activity.perform_transition(ActivityState.PAUSED, clock)
        with pytest.raises(LifecycleError):
            activity.render()

    def test_stop_destroys_surface_via_thread(self, demo_thread):
        demo_thread.pause_all()
        demo_thread.stop_all()
        activity = next(iter(demo_thread.activities.values()))
        assert activity.state is ActivityState.STOPPED
        assert not activity.window.has_surface
        assert demo_thread.in_background

    def test_resume_all_recreates_surface(self, demo_thread):
        demo_thread.pause_all()
        demo_thread.stop_all()
        demo_thread.resume_all()
        activity = next(iter(demo_thread.activities.values()))
        assert activity.state is ActivityState.RESUMED
        assert activity.window.has_surface


class GlDemoActivity(DemoActivity):
    def on_create(self, saved_state) -> None:
        root = ViewGroup("root")
        gl_view = GLSurfaceView("game")
        gl_view.attach_gl(self.thread.framework.gl, self.thread.process)
        gl_view.on_resume_gl()
        root.add_view(gl_view)
        self.set_content_view(root)


class TestTrimMemoryChain:
    def test_complete_trim_frees_all_gl_state(self, device):
        thread = launch_demo(device, package="com.gl",
                             activity_cls=GlDemoActivity)
        process = thread.process
        assert device.vendor_gl.live_context_count(process.pid) >= 1
        thread.pause_all()      # GLSurfaceView drops its context on pause
        thread.stop_all()
        thread.handle_trim_memory(TRIM_MEMORY_COMPLETE)
        assert device.vendor_gl.live_context_count(process.pid) == 0
        assert process.memory.regions(RegionKind.GL_CONTEXT) == []
        # Vendor library still loaded: eglUnload is Flux's job, not trim's.
        assert device.gl.is_initialized(process)

    def test_trim_destroys_view_roots_for_conditional_reinit(self,
                                                             demo_thread):
        demo_thread.pause_all()
        demo_thread.stop_all()
        demo_thread.handle_trim_memory(TRIM_MEMORY_COMPLETE)
        activity = next(iter(demo_thread.activities.values()))
        assert activity.view_root is None
        demo_thread.rebuild_view_roots()
        assert activity.view_root is not None

    def test_partial_trim_only_flushes_caches(self, demo_thread):
        renderer = demo_thread.renderer
        assert renderer.cache_bytes() > 0
        demo_thread.handle_trim_memory(TRIM_MEMORY_UI_HIDDEN)
        assert renderer.cache_bytes() == 0
        assert renderer.initialized    # renderer survives partial trim

    def test_trim_levels_delivered_to_activities(self, demo_thread):
        demo_thread.handle_trim_memory(TRIM_MEMORY_UI_HIDDEN)
        assert demo_thread.trim_levels_seen == [TRIM_MEMORY_UI_HIDDEN]

    def test_preserved_context_survives_trim(self, device):
        class PreservingActivity(DemoActivity):
            def on_create(self, saved_state) -> None:
                root = ViewGroup("root")
                gl_view = GLSurfaceView("game")
                gl_view.attach_gl(self.thread.framework.gl,
                                  self.thread.process)
                gl_view.set_preserve_egl_context_on_pause(True)
                gl_view.on_resume_gl()
                root.add_view(gl_view)
                self.set_content_view(root)

        thread = launch_demo(device, package="com.sticky",
                             activity_cls=PreservingActivity)
        thread.pause_all()
        thread.stop_all()
        # The preserved context is still alive: exactly the state that
        # makes Flux refuse migration (paper §3.4).
        assert device.vendor_gl.live_context_count(thread.process.pid) >= 1
