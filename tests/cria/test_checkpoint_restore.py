"""CRIA checkpoint and restore mechanics."""

import pytest

from repro.android.app.notification import Notification
from repro.core.cria import (
    BinderRefKind,
    MigrationError,
    MigrationRefusal,
    checkpoint_app,
    prepare_app,
    restore_app,
)
from tests.conftest import DEMO_PACKAGE, launch_demo


def prepared_image(device, thread, package=DEMO_PACKAGE):
    prepare_app(device, package)
    return checkpoint_app(device, package)


class TestCheckpoint:
    def test_image_carries_identity(self, device, demo_thread):
        nm = demo_thread.context.get_system_service("notification")
        nm.notify(1, Notification("keep"))
        image = prepared_image(device, demo_thread)
        assert image.package == DEMO_PACKAGE
        assert image.source_kernel == device.kernel.version
        assert image.checkpoint_time == device.clock.now
        assert len(image.record_log) == 1

    def test_process_frozen_after_checkpoint(self, device, demo_thread):
        prepared_image(device, demo_thread)
        assert demo_thread.process.state.value == "frozen"

    def test_refs_classified_external_system(self, device, demo_thread):
        demo_thread.context.get_system_service("notification")
        image = prepared_image(device, demo_thread)
        kinds = {r.kind for r in image.main_process.binder_refs}
        assert kinds == {BinderRefKind.EXTERNAL_SYSTEM}
        assert "notification" in image.external_service_names()

    def test_anonymous_connection_ref_classified(self, device, demo_thread):
        sensors = demo_thread.context.get_system_service("sensor")
        accel = sensors.default_sensor("accelerometer")
        sensors.register_listener(lambda e: None, accel.handle)
        image = prepared_image(device, demo_thread)
        anonymous = [r for r in image.main_process.binder_refs
                     if r.kind is BinderRefKind.EXTERNAL_ANONYMOUS]
        assert len(anonymous) == 1
        assert anonymous[0].label.startswith("sensor-connection:")

    def test_non_system_binder_connection_refused(self, device, demo_thread):
        other = launch_demo(device, package="com.peer")
        node = device.binder.create_node(other.process, object(),
                                         "peer-service")
        device.binder.acquire_ref(demo_thread.process, node)
        prepare_app(device, DEMO_PACKAGE)
        with pytest.raises(MigrationError) as excinfo:
            checkpoint_app(device, DEMO_PACKAGE)
        assert excinfo.value.reason is \
            MigrationRefusal.EXTERNAL_BINDER_CONNECTION
        # The process is thawed again after the refusal.
        assert demo_thread.process.state.value == "alive"

    def test_unprepared_app_with_gl_refused(self, device):
        from tests.app.test_views_activity import GlDemoActivity
        launch_demo(device, package="com.game", activity_cls=GlDemoActivity)
        with pytest.raises(MigrationError) as excinfo:
            checkpoint_app(device, "com.game")
        assert excinfo.value.reason is MigrationRefusal.DEVICE_STATE_RESIDUE

    def test_image_sizes(self, device, demo_thread):
        image = prepared_image(device, demo_thread)
        assert image.raw_bytes() > image.main_process.anonymous_memory_bytes()
        assert image.compressed_bytes() < image.raw_bytes()

    def test_code_regions_do_not_travel(self, device, demo_thread):
        image = prepared_image(device, demo_thread)
        proc = image.main_process
        assert proc.anonymous_memory_bytes() < proc.memory_bytes()


class TestRestore:
    def _migrated(self, device_pair, workload=None):
        home, guest = device_pair
        thread = launch_demo(home)   # install before pairing syncs apps
        home.pairing_service.pair(guest)
        if workload is not None:
            workload(thread)
        image = prepared_image(home, thread)
        return home, guest, thread, image, restore_app(guest, image)

    def test_restore_into_pid_namespace(self, device_pair):
        home, guest, thread, image, restored = self._migrated(device_pair)
        virtual = image.main_process.virtual_pid
        assert restored.namespace.to_real(virtual) == restored.process.pid
        assert restored.process.package == DEMO_PACKAGE

    def test_binder_handles_preserved(self, device_pair):
        def use_services(thread):
            thread.context.get_system_service("notification")
            thread.context.get_system_service("alarm")

        home, guest, thread, image, restored = self._migrated(
            device_pair, use_services)
        for ref in image.main_process.binder_refs:
            node = guest.binder.resolve(restored.process, ref.handle)
            assert node.alive
            if ref.service_name:
                assert node.label == ref.service_name

    def test_memory_regions_restored_intact(self, device_pair):
        home, guest, thread, image, restored = self._migrated(device_pair)
        for region in image.main_process.regions:
            restored_region = restored.process.memory.get(region.name)
            assert restored_region.content_hash() == region.content_hash()

    def test_restore_without_wrapper_refused(self, device_pair, clock):
        home, guest = device_pair
        thread = launch_demo(home)
        image = prepared_image(home, thread)
        # guest was never paired: no pseudo-install.
        with pytest.raises(MigrationError) as excinfo:
            restore_app(guest, image)
        assert excinfo.value.reason is MigrationRefusal.NOT_PAIRED

    def test_api_level_gate(self, device_pair):
        from tests.conftest import install_demo
        home, guest = device_pair
        install_demo(home, "com.future", api_level=25)   # beyond KitKat
        from tests.conftest import DemoActivity
        home.launch_app("com.future", DemoActivity)
        home.pairing_service.pair(guest)
        report = home.pairing_service.pairing_with(guest.name)
        assert "com.future" in report.incompatible

    def test_thread_rebound_to_guest(self, device_pair):
        home, guest, thread, image, restored = self._migrated(device_pair)
        assert restored.thread is thread
        assert thread.framework.device is guest
        assert thread.process is restored.process
        assert guest.thread_of(DEMO_PACKAGE) is thread
        assert home.thread_of(DEMO_PACKAGE) is thread  # home not yet cleaned

    def test_sensor_socket_fd_reserved(self, device_pair):
        def use_sensors(thread):
            sensors = thread.context.get_system_service("sensor")
            accel = sensors.default_sensor("accelerometer")
            sensors.register_listener(lambda e: None, accel.handle)

        home, guest, thread, image, restored = self._migrated(
            device_pair, use_sensors)
        assert restored.reserved_fds
        reserved = restored.process.fds.reserved()
        assert any("sensor-events" in reason
                   for reason in reserved.values())
        assert restored.pending_refs
