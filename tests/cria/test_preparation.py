"""CRIA preparation: the background -> trim -> eglUnload pipeline."""

import pytest

from repro.android.kernel.files import OpenFile
from repro.core.cria import MigrationError, MigrationRefusal, prepare_app
from repro.core.cria.preparation import check_preparable
from tests.conftest import DEMO_PACKAGE, DemoActivity, launch_demo


class TestHappyPath:
    def test_prepare_leaves_no_device_state(self, device, demo_thread):
        report = prepare_app(device, DEMO_PACKAGE)
        process = demo_thread.process
        assert report.device_regions_remaining == 0
        assert report.surfaces_freed == 1
        assert report.vendor_lib_unloaded
        assert process.memory.device_specific_regions() == []
        assert device.kernel.pmem.allocations_of(process.pid) == []
        assert not device.gl.is_initialized(process)

    def test_prepare_order_in_trace(self, device, demo_thread):
        prepare_app(device, DEMO_PACKAGE)
        tracer = device.tracer
        background = tracer.index_of("service:activity", "background")
        trim = tracer.index_of("service:activity", "trim-memory")
        prepared = tracer.index_of("cria", "prepared")
        assert -1 < background < trim < prepared

    def test_prepare_with_gl_game(self, device):
        from tests.app.test_views_activity import GlDemoActivity
        thread = launch_demo(device, package="com.game",
                             activity_cls=GlDemoActivity)
        report = prepare_app(device, "com.game")
        assert report.gl_contexts_terminated >= 1
        assert thread.process.memory.device_specific_regions() == []


class TestRefusals:
    def test_not_running(self, device):
        with pytest.raises(MigrationError) as excinfo:
            prepare_app(device, "com.ghost")
        assert excinfo.value.reason is MigrationRefusal.NOT_RUNNING

    def test_multi_process(self, device):
        from tests.conftest import install_demo
        install_demo(device, "com.multi")
        device.launch_app("com.multi", DemoActivity, extra_processes=1)
        with pytest.raises(MigrationError) as excinfo:
            prepare_app(device, "com.multi")
        assert excinfo.value.reason is MigrationRefusal.MULTI_PROCESS

    def test_preserved_egl_context(self, device):
        from repro.android.app.views import GLSurfaceView, ViewGroup

        class Sticky(DemoActivity):
            def on_create(self, saved_state):
                root = ViewGroup("root")
                gl_view = GLSurfaceView("game")
                gl_view.attach_gl(self.thread.framework.gl,
                                  self.thread.process)
                gl_view.set_preserve_egl_context_on_pause(True)
                gl_view.on_resume_gl()
                root.add_view(gl_view)
                self.set_content_view(root)

        launch_demo(device, package="com.sticky", activity_cls=Sticky)
        with pytest.raises(MigrationError) as excinfo:
            prepare_app(device, "com.sticky")
        assert excinfo.value.reason is MigrationRefusal.PRESERVED_EGL_CONTEXT

    def test_active_content_provider(self, device, demo_thread):
        provider_app = launch_demo(device, package="com.provider")
        provider_app.publish_provider("contacts")
        am = demo_thread.context.get_system_service("activity")
        am.getContentProvider("contacts")
        with pytest.raises(MigrationError) as excinfo:
            check_preparable(device, DEMO_PACKAGE)
        assert excinfo.value.reason is MigrationRefusal.ACTIVE_CONTENT_PROVIDER
        # Finishing the interaction clears the refusal.
        am.removeContentProvider("contacts")
        check_preparable(device, DEMO_PACKAGE)

    def test_common_sdcard_file_open(self, device, demo_thread):
        demo_thread.process.fds.install(OpenFile("/sdcard/DCIM/photo.jpg"))
        with pytest.raises(MigrationError) as excinfo:
            check_preparable(device, DEMO_PACKAGE)
        assert excinfo.value.reason is MigrationRefusal.COMMON_SDCARD_FILES

    def test_app_specific_sdcard_file_is_fine(self, device, demo_thread):
        demo_thread.process.fds.install(
            OpenFile(f"/sdcard/Android/data/{DEMO_PACKAGE}/cache.bin"))
        check_preparable(device, DEMO_PACKAGE)
