"""The checkpoint-image wire format: framing, checksums, corruption."""

import json

import pytest

from repro.android.app.notification import Notification
from repro.core.cria import checkpoint_app, prepare_app
from repro.core.cria.wire import (
    WIRE_VERSION,
    WireError,
    image_metadata,
    region_payloads,
    serialize_image,
    verify_against_image,
    verify_and_decode,
)
from tests.conftest import DEMO_PACKAGE, launch_demo


@pytest.fixture
def image(device, demo_thread):
    nm = demo_thread.context.get_system_service("notification")
    nm.notify(1, Notification("wire", "test"))
    prepare_app(device, DEMO_PACKAGE)
    return checkpoint_app(device, DEMO_PACKAGE)


class TestFraming:
    def test_round_trip(self, image):
        blob = serialize_image(image)
        metadata = verify_and_decode(blob)
        assert metadata["package"] == DEMO_PACKAGE
        assert metadata["source_kernel"] == "3.4"
        region_names = {r["name"]
                        for p in metadata["processes"]
                        for r in p["regions"]}
        assert {"dalvik-heap", "stack", "code"} <= region_names

    def test_metadata_is_json_clean(self, image):
        text = json.dumps(image_metadata(image))
        assert DEMO_PACKAGE in text
        assert "enqueueNotification" in text

    def test_frame_matches_image(self, image):
        verify_against_image(serialize_image(image), image)

    def test_log_args_described(self, image):
        metadata = image_metadata(image)
        (entry,) = metadata["record_log"]
        assert entry["method"] == "enqueueNotification"
        assert entry["args"]["id"] == 1
        assert entry["args"]["notification"]["__object__"] == "Notification"


def _nul_heavy_image():
    """A hand-built image whose payloads are full of NUL bytes.

    Version 1's ``b"\\x00".join`` framing could not round-trip these:
    any payload containing (or equal to) NULs made the join ambiguous.
    Version 2's per-region (offset, length) table must reconstruct every
    payload byte-for-byte.
    """
    from repro.android.kernel.memory import MemoryRegion, RegionKind
    from repro.core.cria.image import CheckpointImage, ProcessImage

    regions = [
        MemoryRegion("dalvik-heap", RegionKind.HEAP, 4096,
                     payload=b"\x00\x00live\x00heap\x00\x00"),
        MemoryRegion("all-nuls", RegionKind.MMAP, 512,
                     payload=b"\x00" * 64),
        MemoryRegion("empty", RegionKind.MMAP, 0, payload=b""),
        MemoryRegion("stack", RegionKind.STACK, 1024,
                     payload=b"frame\x00frame\x00"),
    ]
    proc = ProcessImage(name="com.nul.demo", virtual_pid=7, uid=10007,
                        regions=regions, threads=[], fds=[],
                        binder_refs=[], owned_node_labels=[])
    return CheckpointImage(
        package="com.nul.demo", source_device="Nexus 4",
        source_kernel="3.4", android_version="4.4", api_level=19,
        checkpoint_time=1.5, processes=[proc], app_payload=None,
        record_log=[])


class TestNulPayloadFraming:
    def test_round_trip_preserves_nul_payloads(self):
        image = _nul_heavy_image()
        blob = serialize_image(image)
        payloads = region_payloads(blob)
        for proc in image.processes:
            for region in proc.regions:
                assert payloads[(proc.virtual_pid, region.name)] \
                    == region.payload, region.name
        verify_against_image(blob, image)

    def test_offset_table_is_exact(self):
        image = _nul_heavy_image()
        metadata = verify_and_decode(serialize_image(image))
        assert metadata["version"] == WIRE_VERSION
        (proc,) = metadata["processes"]
        offset = 0
        for region_meta, region in zip(proc["regions"],
                                       image.main_process.regions):
            assert region_meta["offset"] == offset
            assert region_meta["length"] == len(region.payload)
            offset += len(region.payload)

    def test_payload_tamper_detected_via_offsets(self):
        image = _nul_heavy_image()
        blob = serialize_image(image)
        # Same length, different bytes, region digest left stale in the
        # image object: the payload comparison must catch it.
        image.main_process.regions[0].payload = \
            b"\x00\x00evil\x00heap\x00\x00"
        with pytest.raises(WireError, match="mismatch"):
            verify_against_image(blob, image)

    def test_out_of_bounds_slice_detected(self):
        image = _nul_heavy_image()
        blob = serialize_image(image)
        import hashlib
        import json
        import struct
        header = struct.Struct(">8sII")
        magic, meta_len, payload_len = header.unpack_from(blob)
        meta = json.loads(blob[header.size:header.size + meta_len])
        meta["processes"][0]["regions"][0]["length"] = 10 ** 6
        raw = json.dumps(meta, separators=(",", ":")).encode()
        body = header.pack(magic, len(raw), payload_len) + raw \
            + blob[header.size + meta_len:-32]
        with pytest.raises(WireError, match="outside payload"):
            region_payloads(body + hashlib.sha256(body).digest())


class TestCorruptionDetection:
    def test_flipped_bit_detected(self, image):
        blob = bytearray(serialize_image(image))
        blob[len(blob) // 2] ^= 0xFF
        with pytest.raises(WireError, match="checksum"):
            verify_and_decode(bytes(blob))

    def test_truncation_detected(self, image):
        blob = serialize_image(image)
        with pytest.raises(WireError):
            verify_and_decode(blob[: len(blob) // 2])

    def test_bad_magic_detected(self, image):
        import hashlib
        blob = bytearray(serialize_image(image)[:-32])
        blob[:8] = b"NOTFLUX1"
        blob = bytes(blob) + hashlib.sha256(bytes(blob)).digest()
        with pytest.raises(WireError, match="magic"):
            verify_and_decode(blob)

    def test_region_tamper_detected(self, image):
        blob = serialize_image(image)
        # Tamper with the image memory after framing: digests disagree.
        image.main_process.regions[0].payload += b"!"
        with pytest.raises(WireError, match="digest mismatch"):
            verify_against_image(blob, image)

    def test_wrong_package_detected(self, image, device):
        other_thread = launch_demo(device, package="com.other")
        prepare_app(device, "com.other")
        other_image = checkpoint_app(device, "com.other")
        blob = serialize_image(other_image)
        with pytest.raises(WireError, match="is for"):
            verify_against_image(blob, image)


class TestMigrationUsesWire:
    def test_migration_still_green_with_verification(self, device_pair):
        home, guest = device_pair
        launch_demo(home)
        home.pairing_service.pair(guest)
        report = home.migration_service.migrate(guest, DEMO_PACKAGE)
        assert report.success
