"""The checkpoint-image wire format: framing, checksums, corruption."""

import json

import pytest

from repro.android.app.notification import Notification
from repro.core.cria import checkpoint_app, prepare_app
from repro.core.cria.wire import (
    WireError,
    image_metadata,
    serialize_image,
    verify_against_image,
    verify_and_decode,
)
from tests.conftest import DEMO_PACKAGE, launch_demo


@pytest.fixture
def image(device, demo_thread):
    nm = demo_thread.context.get_system_service("notification")
    nm.notify(1, Notification("wire", "test"))
    prepare_app(device, DEMO_PACKAGE)
    return checkpoint_app(device, DEMO_PACKAGE)


class TestFraming:
    def test_round_trip(self, image):
        blob = serialize_image(image)
        metadata = verify_and_decode(blob)
        assert metadata["package"] == DEMO_PACKAGE
        assert metadata["source_kernel"] == "3.4"
        region_names = {r["name"]
                        for p in metadata["processes"]
                        for r in p["regions"]}
        assert {"dalvik-heap", "stack", "code"} <= region_names

    def test_metadata_is_json_clean(self, image):
        text = json.dumps(image_metadata(image))
        assert DEMO_PACKAGE in text
        assert "enqueueNotification" in text

    def test_frame_matches_image(self, image):
        verify_against_image(serialize_image(image), image)

    def test_log_args_described(self, image):
        metadata = image_metadata(image)
        (entry,) = metadata["record_log"]
        assert entry["method"] == "enqueueNotification"
        assert entry["args"]["id"] == 1
        assert entry["args"]["notification"]["__object__"] == "Notification"


class TestCorruptionDetection:
    def test_flipped_bit_detected(self, image):
        blob = bytearray(serialize_image(image))
        blob[len(blob) // 2] ^= 0xFF
        with pytest.raises(WireError, match="checksum"):
            verify_and_decode(bytes(blob))

    def test_truncation_detected(self, image):
        blob = serialize_image(image)
        with pytest.raises(WireError):
            verify_and_decode(blob[: len(blob) // 2])

    def test_bad_magic_detected(self, image):
        import hashlib
        blob = bytearray(serialize_image(image)[:-32])
        blob[:8] = b"NOTFLUX1"
        blob = bytes(blob) + hashlib.sha256(bytes(blob)).digest()
        with pytest.raises(WireError, match="magic"):
            verify_and_decode(blob)

    def test_region_tamper_detected(self, image):
        blob = serialize_image(image)
        # Tamper with the image memory after framing: digests disagree.
        image.main_process.regions[0].payload += b"!"
        with pytest.raises(WireError, match="digest mismatch"):
            verify_against_image(blob, image)

    def test_wrong_package_detected(self, image, device):
        other_thread = launch_demo(device, package="com.other")
        prepare_app(device, "com.other")
        other_image = checkpoint_app(device, "com.other")
        blob = serialize_image(other_image)
        with pytest.raises(WireError, match="is for"):
            verify_against_image(blob, image)


class TestMigrationUsesWire:
    def test_migration_still_green_with_verification(self, device_pair):
        home, guest = device_pair
        launch_demo(home)
        home.pairing_service.pair(guest)
        report = home.migration_service.migrate(guest, DEMO_PACKAGE)
        assert report.success
