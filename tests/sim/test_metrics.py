"""The metrics registry: typing, keys, merging, timeline export."""

import pytest

from repro.sim import SimClock
from repro.sim.metrics import (
    RATE_BUCKETS_MBPS,
    TIME_BUCKETS_S,
    MetricsError,
    MetricsRegistry,
    empty_snapshot,
    merge_snapshots,
    metric_key,
    rollup_counters,
    snapshot_by_label,
    split_key,
    subsystems_in,
)


class TestKeys:
    def test_canonical_key_sorts_labels(self):
        registry = MetricsRegistry()
        counter = registry.counter("binder", "transactions",
                                   interface="alarm", app="com.x")
        assert counter.key == \
            "binder/transactions{app=com.x,interface=alarm}"

    def test_split_key_roundtrip(self):
        key = metric_key("record", "calls_pruned",
                         (("app", "com.x"), ("rule", "IFoo.bar")))
        assert split_key(key) == ("record", "calls_pruned",
                                  {"app": "com.x", "rule": "IFoo.bar"})
        assert split_key("link/bytes_total") == ("link", "bytes_total", {})

    def test_same_labels_same_metric(self):
        registry = MetricsRegistry()
        a = registry.counter("s", "n", x="1", y="2")
        b = registry.counter("s", "n", y="2", x="1")
        assert a is b


class TestTypes:
    def test_counter_monotonic(self):
        registry = MetricsRegistry()
        counter = registry.counter("s", "n")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        with pytest.raises(MetricsError):
            counter.inc(-1)

    def test_gauge_set_and_add(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("s", "level")
        gauge.set(10)
        gauge.add(-3)
        assert gauge.value == 7

    def test_histogram_buckets(self):
        registry = MetricsRegistry()
        hist = registry.histogram("s", "lat", bounds=(1.0, 10.0))
        for value in (0.5, 5.0, 50.0, 0.2):
            hist.observe(value)
        assert hist.counts == [2, 1, 1]
        assert hist.count == 4
        assert hist.min == 0.2 and hist.max == 50.0
        assert hist.mean == pytest.approx(55.7 / 4)

    def test_histogram_bounds_must_increase(self):
        registry = MetricsRegistry()
        with pytest.raises(MetricsError):
            registry.histogram("s", "bad", bounds=(2.0, 1.0))

    def test_histogram_bounds_conflict(self):
        registry = MetricsRegistry()
        registry.histogram("s", "lat", bounds=TIME_BUCKETS_S)
        with pytest.raises(MetricsError):
            registry.histogram("s", "lat", bounds=RATE_BUCKETS_MBPS)

    def test_type_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("s", "n")
        with pytest.raises(MetricsError):
            registry.gauge("s", "n")

    def test_empty_registry_is_falsy_but_real(self):
        # __len__ == 0 makes a fresh registry falsy; wiring code must
        # therefore test `is not None`, never truthiness.
        registry = MetricsRegistry()
        assert len(registry) == 0 and not registry
        assert registry.enabled


class TestNullRegistry:
    def test_disabled_registry_is_inert(self):
        registry = MetricsRegistry(enabled=False)
        registry.counter("s", "n").inc(5)
        registry.gauge("s", "g").set(3)
        registry.histogram("s", "h").observe(1.0)
        assert len(registry) == 0
        assert registry.snapshot() == empty_snapshot()


class TestTimeline:
    def test_samples_coalesce_per_timestamp(self):
        clock = SimClock()
        registry = MetricsRegistry(clock=clock)
        counter = registry.counter("s", "n")
        counter.inc()
        counter.inc()            # same virtual instant: last value wins
        clock.advance(1.0)
        counter.inc()
        [event_a, event_b] = registry.chrome_counter_events()
        assert event_a["ph"] == "C" and event_a["cat"] == "metric"
        assert event_a["args"]["value"] == 2
        assert event_b["ts"] == pytest.approx(1_000_000)
        assert event_b["args"]["value"] == 3

    def test_no_clock_no_samples(self):
        registry = MetricsRegistry()
        registry.counter("s", "n").inc()
        assert registry.chrome_counter_events() == []


class TestSnapshots:
    def _registry(self, base):
        registry = MetricsRegistry()
        registry.counter("s", "n", app="a").inc(base)
        registry.gauge("s", "g").set(base * 10)
        registry.histogram("s", "h", bounds=(1.0, 2.0)).observe(base)
        return registry

    def test_snapshot_keys_sorted(self):
        registry = MetricsRegistry()
        registry.counter("z", "last").inc()
        registry.counter("a", "first").inc()
        snap = registry.snapshot()
        assert list(snap["counters"]) == ["a/first", "z/last"]

    def test_merge_adds_counters_and_histograms_keeps_max_gauge(self):
        merged = merge_snapshots([self._registry(1).snapshot(),
                                  self._registry(3).snapshot()])
        assert merged["counters"]["s/n{app=a}"] == 4
        assert merged["gauges"]["s/g"] == 30
        hist = merged["histograms"]["s/h"]
        assert hist["count"] == 2
        assert hist["counts"] == [1, 0, 1]
        assert hist["min"] == 1 and hist["max"] == 3

    def test_merge_is_order_insensitive_for_counters(self):
        snaps = [self._registry(n).snapshot() for n in (1, 2, 3)]
        forward = merge_snapshots(snaps)
        backward = merge_snapshots(list(reversed(snaps)))
        assert forward == backward

    def test_merge_rejects_bound_mismatch(self):
        a = MetricsRegistry()
        a.histogram("s", "h", bounds=(1.0,)).observe(0.5)
        b = MetricsRegistry()
        b.histogram("s", "h", bounds=(2.0,)).observe(0.5)
        with pytest.raises(MetricsError):
            merge_snapshots([a.snapshot(), b.snapshot()])

    def test_rollup_sums_label_variants(self):
        registry = MetricsRegistry()
        registry.counter("binder", "transactions", interface="a").inc(2)
        registry.counter("binder", "transactions", interface="b").inc(3)
        assert rollup_counters(registry.snapshot()) == \
            {"binder/transactions": 5}

    def test_snapshot_by_label_partitions_and_strips(self):
        registry = MetricsRegistry()
        registry.counter("record", "calls", app="x").inc(1)
        registry.counter("record", "calls", app="y").inc(2)
        registry.counter("link", "bytes_total").inc(9)   # no app label
        grouped = snapshot_by_label(registry.snapshot(), "app")
        assert sorted(grouped) == ["x", "y"]
        assert grouped["x"]["counters"] == {"record/calls": 1}
        assert grouped["y"]["counters"] == {"record/calls": 2}

    def test_subsystems_in(self):
        registry = MetricsRegistry()
        registry.counter("cria", "pages").inc()
        registry.gauge("chunks", "store_bytes").set(1)
        assert subsystems_in(registry.snapshot()) == ["chunks", "cria"]


class TestFoldInstanceLabel:
    """Shared by the metrics registry and the causal event log."""

    def test_folds_numeric_instance_suffix(self):
        from repro.sim.metrics import fold_instance_label
        assert fold_instance_label("sensor-connection:7") == \
            "sensor-connection"
        assert fold_instance_label("listener:123") == "listener"

    def test_leaves_other_labels_alone(self):
        from repro.sim.metrics import fold_instance_label
        assert fold_instance_label("alarm") == "alarm"
        assert fold_instance_label("svc:name") == "svc:name"
        assert fold_instance_label("a:1:b") == "a:1:b"
        assert fold_instance_label("") == ""

    def test_binder_driver_uses_the_fold(self):
        """The driver's metric keys and event attributes agree."""
        from repro.android.binder import BinderDriver, Parcel
        from repro.android.kernel import Kernel
        from repro.sim import SimClock
        from repro.sim.events import FlightRecorder

        kernel = Kernel(SimClock())
        recorder = FlightRecorder(clock=kernel.clock, device="d")
        registry = MetricsRegistry()
        driver = BinderDriver(kernel, metrics=registry, events=recorder)
        system = kernel.create_process("system", uid=1000, package="android")
        app = kernel.create_process("com.app", uid=10001, package="com.app")

        class Conn:
            def poke(self):
                return None

        node = driver.create_node(system, Conn(), "sensor-connection:9")
        handle = driver.acquire_ref(app, node)
        driver.transact(app, handle, "poke", Parcel())
        [series] = [key for key in registry.snapshot()["counters"]
                    if key.startswith("binder/transactions")]
        assert "interface=sensor-connection" in series
        assert ":9" not in series
        [event] = recorder.events("binder.transact")
        assert event.attrs["interface"] == "sensor-connection"
