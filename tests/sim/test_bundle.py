"""Run bundles: self-describing artifacts with manifests and digests."""

import json

import pytest

from repro.sim.bundle import (
    BUNDLE_SCHEMA,
    BundleError,
    RunBundle,
    collect_fingerprint,
    fingerprint_differences,
    is_bundle_path,
    write_bundle,
)

EVENTS = [
    {"t": 0.0, "device": "home", "seq": 1, "kind": "migration.start",
     "attrs": {"package": "com.example"}},
    {"t": 1.5, "device": "guest", "seq": 1, "kind": "migration.done",
     "attrs": {"total_seconds": 1.5}},
]

METRICS = {
    "schema": 1,
    "migration": {
        "package": "com.example",
        "success": True,
        "faulted_stage": None,
        "stages": {"transfer": 1.0, "restore": 0.5},
        "critical_path": [
            {"name": "transfer", "seconds": 1.0, "self_seconds": 0.9},
        ],
        "total_seconds": 1.5,
    },
    "metrics": {"counters": {"link/bytes_total": 100}, "gauges": {},
                "histograms": {}},
}

TIMELINE = {"link/share{link=a->b}": [[0.0, 1.0], [1.5, 0.0]]}


def _write(path, **overrides):
    kwargs = dict(
        kind="migrate",
        fingerprint=collect_fingerprint(
            "migrate", workload=["com.example"], pairs=["a->b"], seed=0),
        metrics=METRICS,
        events=EVENTS,
        timeline=TIMELINE,
        trace={"traceEvents": []},
        profile="rows",
    )
    kwargs.update(overrides)
    return write_bundle(str(path), **kwargs)


class TestWriteAndLoad:
    def test_directory_round_trip(self, tmp_path):
        path = _write(tmp_path / "run")
        bundle = RunBundle.load(path)
        assert bundle.kind == "migrate"
        assert bundle.fingerprint["workload"] == ["com.example"]
        assert bundle.metrics_document() == METRICS
        assert bundle.events() == EVENTS
        assert bundle.timeline_series() == TIMELINE
        assert bundle.members() == ["events.jsonl", "manifest.json",
                                    "metrics.json", "profile.txt",
                                    "timeline.json", "trace.json"]

    def test_tarball_round_trip(self, tmp_path):
        path = _write(tmp_path / "run.tar.gz")
        bundle = RunBundle.load(path)
        assert bundle.metrics_document() == METRICS
        assert bundle.events() == EVENTS

    def test_manifest_records_digests(self, tmp_path):
        path = _write(tmp_path / "run")
        manifest = json.loads((tmp_path / "run" / "manifest.json")
                              .read_text())
        assert manifest["schema"] == BUNDLE_SCHEMA
        files = manifest["files"]
        assert set(files) == {"metrics.json", "events.jsonl",
                              "timeline.json", "trace.json", "profile.txt"}
        for meta in files.values():
            assert meta["bytes"] > 0
            assert len(meta["sha256"]) == 64
        assert path  # returned path is the one written

    def test_optional_planes_may_be_absent(self, tmp_path):
        path = _write(tmp_path / "bare", events=None, timeline=None,
                      trace=None, profile=None)
        bundle = RunBundle.load(path)
        assert bundle.events() == []
        assert bundle.timeline_series() == {}
        assert bundle.metrics_document() == METRICS


class TestDeterminism:
    def test_identical_writes_are_byte_identical(self, tmp_path):
        _write(tmp_path / "one")
        _write(tmp_path / "two")
        for name in ("manifest.json", "metrics.json", "events.jsonl",
                     "timeline.json"):
            assert ((tmp_path / "one" / name).read_bytes()
                    == (tmp_path / "two" / name).read_bytes())

    def test_identical_tarballs_are_byte_identical(self, tmp_path):
        a = _write(tmp_path / "one.tar.gz")
        b = _write(tmp_path / "two.tar.gz")
        assert (tmp_path / "one.tar.gz").read_bytes() \
            == (tmp_path / "two.tar.gz").read_bytes()
        assert a != b  # distinct paths, same bytes


class TestVerification:
    def test_digest_mismatch_names_the_member(self, tmp_path):
        path = _write(tmp_path / "run")
        (tmp_path / "run" / "metrics.json").write_text("{\"rotted\": 1}\n")
        with pytest.raises(BundleError, match="metrics.json.*mismatch"):
            RunBundle.load(path)

    def test_verify_false_loads_a_corrupt_bundle(self, tmp_path):
        path = _write(tmp_path / "run")
        (tmp_path / "run" / "metrics.json").write_text("{\"rotted\": 1}\n")
        bundle = RunBundle.load(path, verify=False)
        assert bundle.metrics_document() == {"rotted": 1}

    def test_missing_listed_member_is_an_error(self, tmp_path):
        path = _write(tmp_path / "run")
        (tmp_path / "run" / "events.jsonl").unlink()
        with pytest.raises(BundleError, match="events.jsonl.*missing"):
            RunBundle.load(path)

    def test_unknown_schema_rejected(self, tmp_path):
        path = _write(tmp_path / "run")
        manifest_path = tmp_path / "run" / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["schema"] = 99
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(BundleError, match="unsupported bundle schema"):
            RunBundle.load(path)

    def test_not_a_bundle(self, tmp_path):
        with pytest.raises(BundleError, match="no such bundle"):
            RunBundle.load(str(tmp_path / "nowhere"))
        (tmp_path / "plain").mkdir()
        with pytest.raises(BundleError, match="not a run bundle"):
            RunBundle.load(str(tmp_path / "plain"))


class TestIsBundlePath:
    def test_detects_directories_and_tarballs(self, tmp_path):
        path = _write(tmp_path / "run")
        tar = _write(tmp_path / "run.tar.gz")
        assert is_bundle_path(path)
        assert is_bundle_path(tar)

    def test_rejects_loose_files_and_plain_dirs(self, tmp_path):
        loose = tmp_path / "events.jsonl"
        loose.write_text("{}\n")
        assert not is_bundle_path(str(loose))
        (tmp_path / "plain").mkdir()
        assert not is_bundle_path(str(tmp_path / "plain"))


class TestFingerprint:
    def test_unknown_kind_rejected(self):
        with pytest.raises(BundleError, match="unknown bundle kind"):
            collect_fingerprint("bogus")
        with pytest.raises(BundleError, match="unknown bundle kind"):
            write_bundle("x", kind="bogus", fingerprint={})

    def test_workload_is_sorted(self):
        fingerprint = collect_fingerprint("sweep", workload=["b", "a"])
        assert fingerprint["workload"] == ["a", "b"]

    def test_flux_env_is_captured(self, monkeypatch):
        monkeypatch.setenv("FLUX_TEST_KNOB", "7")
        monkeypatch.setenv("NOT_FLUX", "1")
        fingerprint = collect_fingerprint("migrate")
        assert fingerprint["env"]["FLUX_TEST_KNOB"] == "7"
        assert "NOT_FLUX" not in fingerprint["env"]

    def test_differences_are_reported_per_field(self):
        a = collect_fingerprint("migrate", seed=0)
        b = collect_fingerprint("migrate", seed=1)
        assert fingerprint_differences(a, a) == {}
        assert fingerprint_differences(a, b) == {"seed": (0, 1)}


class TestNormalization:
    def test_migrate_rows(self, tmp_path):
        bundle = RunBundle.load(_write(tmp_path / "run"))
        (row,) = bundle.migration_rows()
        assert row["key"] == "com.example"
        assert row["outcome"] == "migrated"
        assert row["stages"] == {"transfer": 1.0, "restore": 0.5}
        assert row["self_seconds"] == {"transfer": 0.9}
        assert row["total_seconds"] == 1.5

    def test_faulted_migrate_row(self, tmp_path):
        metrics = {"schema": 1, "migration": {
            "package": "com.example", "success": False,
            "faulted_stage": "transfer", "stages": {"transfer": 0.4},
            "total_seconds": 0.4}}
        bundle = RunBundle.load(_write(tmp_path / "run", metrics=metrics,
                                       events=None, timeline=None,
                                       trace=None, profile=None))
        (row,) = bundle.migration_rows()
        assert row["outcome"] == "faulted"
        assert row["faulted_stage"] == "transfer"

    def test_sweep_rows_and_totals(self, tmp_path):
        metrics = {
            "schema": 1,
            "totals": {"counters": {"link/transfers": 2}, "gauges": {},
                       "histograms": {}},
            "migrations": [
                {"pair": "a to b", "package": "com.one",
                 "stages": {"transfer": 1.0}, "total_seconds": 1.0,
                 "critical_path": []},
            ],
        }
        bundle = RunBundle.load(_write(tmp_path / "run", kind="sweep",
                                       metrics=metrics, events=None,
                                       timeline=None, trace=None,
                                       profile=None))
        (row,) = bundle.migration_rows()
        assert row["key"] == "a to b/com.one"
        assert bundle.snapshot()["counters"] == {"link/transfers": 2}

    def test_scenario_rows_and_wait_profiles(self, tmp_path):
        metrics = {
            "schema": 1,
            "scenario": {"sessions": [
                {"home": "h", "guest": "g", "package": "com.one",
                 "status": "migrated", "session": "h/com.one@0",
                 "stages": {"transfer": 2.0}, "total_seconds": 2.0,
                 "wait_profile": {"admission_queue_s": 0.0,
                                  "active_s": 2.0, "wall_s": 2.0}},
            ]},
            "metrics": {"counters": {}, "gauges": {}, "histograms": {}},
        }
        bundle = RunBundle.load(_write(tmp_path / "run", kind="scenario",
                                       metrics=metrics, events=None,
                                       timeline=None, trace=None,
                                       profile=None))
        (row,) = bundle.migration_rows()
        assert row["key"] == "h->g:com.one"
        assert row["session"] == "h/com.one@0"
        profiles = bundle.wait_profiles()
        assert profiles["h/com.one@0"]["active_s"] == 2.0
