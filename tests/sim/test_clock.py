"""SimClock, timers, Stopwatch."""

import pytest
from hypothesis import given, strategies as st

from repro.sim.clock import ClockError, SimClock, Stopwatch


class TestAdvance:
    def test_starts_at_zero(self):
        assert SimClock().now == 0.0

    def test_advance_moves_time(self):
        clock = SimClock()
        clock.advance(2.5)
        assert clock.now == 2.5

    def test_advance_to_absolute(self):
        clock = SimClock(start=1.0)
        clock.advance_to(4.0)
        assert clock.now == 4.0

    def test_negative_advance_rejected(self):
        with pytest.raises(ClockError):
            SimClock().advance(-1.0)

    def test_backwards_advance_to_rejected(self):
        clock = SimClock(start=5.0)
        with pytest.raises(ClockError):
            clock.advance_to(4.0)


class TestTimers:
    def test_timer_fires_on_advance(self):
        clock = SimClock()
        fired = []
        clock.call_after(1.0, lambda: fired.append(clock.now))
        clock.advance(0.5)
        assert fired == []
        clock.advance(0.6)
        assert fired == [1.0]

    def test_timer_sees_its_deadline_as_now(self):
        clock = SimClock()
        seen = []
        clock.call_at(3.0, lambda: seen.append(clock.now))
        clock.advance(10.0)
        assert seen == [3.0]
        assert clock.now == 10.0

    def test_timers_fire_in_deadline_order(self):
        clock = SimClock()
        order = []
        clock.call_at(2.0, lambda: order.append("b"))
        clock.call_at(1.0, lambda: order.append("a"))
        clock.call_at(3.0, lambda: order.append("c"))
        clock.advance(5.0)
        assert order == ["a", "b", "c"]

    def test_cancelled_timer_does_not_fire(self):
        clock = SimClock()
        fired = []
        handle = clock.call_after(1.0, lambda: fired.append(1))
        handle.cancel()
        clock.advance(2.0)
        assert fired == []
        assert handle.cancelled

    def test_callback_can_schedule_nested_timer(self):
        clock = SimClock()
        order = []

        def first():
            order.append("first")
            clock.call_after(0.5, lambda: order.append("nested"))

        clock.call_at(1.0, first)
        clock.advance(2.0)
        assert order == ["first", "nested"]

    def test_negative_delay_rejected(self):
        with pytest.raises(ClockError):
            SimClock().call_after(-0.1, lambda: None)

    def test_pending_and_next_deadline(self):
        clock = SimClock()
        assert clock.pending_timers() == 0
        assert clock.next_deadline() is None
        handle = clock.call_at(2.0, lambda: None)
        clock.call_at(5.0, lambda: None)
        assert clock.pending_timers() == 2
        assert clock.next_deadline() == 2.0
        handle.cancel()
        assert clock.pending_timers() == 1
        assert clock.next_deadline() == 5.0

    @given(st.lists(st.floats(min_value=0.001, max_value=100.0),
                    min_size=1, max_size=20))
    def test_timers_always_fire_in_nondecreasing_time_order(self, delays):
        clock = SimClock()
        fire_times = []
        for delay in delays:
            clock.call_after(delay, lambda: fire_times.append(clock.now))
        clock.advance(101.0)
        assert len(fire_times) == len(delays)
        assert fire_times == sorted(fire_times)


class TestStopwatch:
    def test_measures_named_spans(self):
        clock = SimClock()
        watch = Stopwatch(clock)
        watch.start("a")
        clock.advance(1.0)
        watch.stop()
        watch.start("b")
        clock.advance(2.0)
        watch.stop()
        assert watch.duration("a") == pytest.approx(1.0)
        assert watch.duration("b") == pytest.approx(2.0)
        assert watch.total() == pytest.approx(3.0)

    def test_overlapping_spans_rejected(self):
        watch = Stopwatch(SimClock())
        watch.start("a")
        with pytest.raises(ClockError):
            watch.start("b")

    def test_stop_without_start_rejected(self):
        with pytest.raises(ClockError):
            Stopwatch(SimClock()).stop()

    def test_repeated_name_accumulates(self):
        clock = SimClock()
        watch = Stopwatch(clock)
        for _ in range(2):
            watch.start("x")
            clock.advance(0.5)
            watch.stop()
        assert watch.duration("x") == pytest.approx(1.0)


class TestTimerHousekeeping:
    def test_cancelled_timer_never_fires(self):
        clock = SimClock()
        fired = []
        handle = clock.call_after(1.0, lambda: fired.append("x"))
        handle.cancel()
        clock.advance(2.0)
        assert fired == []

    def test_cancel_is_idempotent(self):
        clock = SimClock()
        handle = clock.call_after(1.0, lambda: None)
        handle.cancel()
        handle.cancel()
        assert clock.pending_timers() == 0

    def test_cancel_after_fire_is_a_noop(self):
        clock = SimClock()
        handle = clock.call_after(1.0, lambda: None)
        clock.advance(2.0)
        handle.cancel()
        assert clock.pending_timers() == 0

    def test_pending_timers_counts_only_live_entries(self):
        clock = SimClock()
        handles = [clock.call_after(float(i + 1), lambda: None)
                   for i in range(5)]
        assert clock.pending_timers() == 5
        handles[1].cancel()
        handles[3].cancel()
        assert clock.pending_timers() == 3
        clock.advance(10.0)
        assert clock.pending_timers() == 0

    def test_cancelled_entries_are_dropped_during_advance(self):
        clock = SimClock()
        for i in range(10):
            clock.call_after(float(i + 1), lambda: None).cancel()
        clock.advance(20.0)
        assert clock._timers == [] and clock.pending_timers() == 0

    def test_next_deadline_skips_cancelled_heads(self):
        clock = SimClock()
        first = clock.call_after(1.0, lambda: None)
        clock.call_after(2.0, lambda: None)
        first.cancel()
        assert clock.next_deadline() == 2.0

    def test_compaction_drops_buried_cancellations(self):
        # Cancelled entries buried under a live far-future timer are
        # unreachable by the sweep; compaction reclaims them once they
        # cross the floor and outnumber the live ones.
        clock = SimClock()
        clock.call_at(10_000.0, lambda: None)
        handles = [clock.call_at(20_000.0 + i, lambda: None)
                   for i in range(SimClock.COMPACT_FLOOR + 10)]
        for handle in handles:
            handle.cancel()
        assert len(clock._timers) == len(handles) + 1
        clock.advance(1.0)  # no timer due; the sweep still compacts
        assert len(clock._timers) == 1
        assert clock.pending_timers() == 1
        assert clock.next_deadline() == 10_000.0
