"""Cooperative sessions: Charge/Waiter/Resource, both drivers."""

import pytest

from repro.sim.clock import SimClock
from repro.sim.scheduler import (
    Charge,
    Resource,
    Scheduler,
    SchedulerError,
    Session,
    Waiter,
    drive_sync,
)


class TestCharge:
    def test_negative_rejected(self):
        with pytest.raises(SchedulerError):
            Charge(-0.1)

    def test_zero_allowed(self):
        assert Charge(0.0).seconds == 0.0


class TestWaiter:
    def test_resolve_delivers_value(self):
        waiter = Waiter("w")
        waiter.resolve(42)
        assert waiter.done and waiter.value == 42

    def test_reject_raises_on_value(self):
        waiter = Waiter("w")
        waiter.reject(ValueError("boom"))
        with pytest.raises(ValueError):
            waiter.value

    def test_value_before_done_rejected(self):
        with pytest.raises(SchedulerError):
            Waiter("w").value

    def test_double_completion_rejected(self):
        waiter = Waiter("w")
        waiter.resolve(1)
        with pytest.raises(SchedulerError):
            waiter.resolve(2)
        with pytest.raises(SchedulerError):
            waiter.reject(ValueError())

    def test_callback_after_done_fires_immediately(self):
        waiter = Waiter("w")
        waiter.resolve("x")
        seen = []
        waiter.add_done(seen.append)
        assert seen == [waiter]

    def test_callback_before_done_fires_on_completion(self):
        waiter = Waiter("w")
        seen = []
        waiter.add_done(seen.append)
        assert seen == []
        waiter.resolve(None)
        assert seen == [waiter]


class TestResource:
    def test_uncontended_acquire_is_immediate(self):
        resource = Resource("dev")
        waiter = resource.acquire("a")
        assert waiter.done and waiter.value is resource
        assert resource.busy and resource.holder == "a"

    def test_fifo_queue_hands_over_on_release(self):
        resource = Resource("dev")
        resource.acquire("a")
        second = resource.acquire("b")
        third = resource.acquire("c")
        assert not second.done and resource.queued == 2
        resource.release()
        assert second.done and resource.holder == "b"
        assert not third.done
        resource.release()
        assert third.done and resource.holder == "c"

    def test_try_acquire(self):
        resource = Resource("dev")
        assert resource.try_acquire("a")
        assert not resource.try_acquire("b")
        resource.release()
        assert resource.try_acquire("b")

    def test_release_unheld_rejected(self):
        with pytest.raises(SchedulerError):
            Resource("dev").release()


class TestDriveSync:
    def test_charges_advance_the_clock_inline(self):
        clock = SimClock()

        def session():
            yield Charge(1.5)
            yield 0.5  # bare floats coerce to charges
            return clock.now

        assert drive_sync(session(), clock) == 2.0
        assert clock.now == 2.0

    def test_resolved_waiter_value_is_sent_in(self):
        clock = SimClock()
        waiter = Waiter("w")
        waiter.resolve("token")

        def session():
            got = yield waiter
            return got

        assert drive_sync(session(), clock) == "token"

    def test_pending_waiter_rejected(self):
        def session():
            yield Waiter("never")

        with pytest.raises(SchedulerError):
            drive_sync(session(), SimClock())

    def test_op_failures_are_thrown_back_in(self):
        class FailingOp:
            def apply_sync(self, clock):
                raise ValueError("op died")

        def session():
            try:
                yield FailingOp()
            except ValueError:
                return "caught"

        assert drive_sync(session(), SimClock()) == "caught"

    def test_unknown_yield_rejected(self):
        def session():
            yield object()

        with pytest.raises(SchedulerError):
            drive_sync(session(), SimClock())


class TestScheduler:
    def test_charges_interleave_on_the_shared_clock(self):
        clock = SimClock()
        scheduler = Scheduler(clock)
        trace = []

        def session(name, step):
            for _ in range(3):
                yield Charge(step)
                trace.append((name, clock.now))

        scheduler.spawn(session("a", 1.0), name="a")
        scheduler.spawn(session("b", 1.5), name="b")
        scheduler.run()
        # The t=3.0 tie resolves FIFO by timer creation: b scheduled its
        # timer at t=1.5, before a scheduled its own at t=2.0.
        assert trace == [("a", 1.0), ("b", 1.5), ("a", 2.0),
                         ("b", 3.0), ("a", 3.0), ("b", 4.5)]

    def test_staggered_start(self):
        clock = SimClock()
        scheduler = Scheduler(clock)
        seen = []

        def session():
            seen.append(clock.now)
            yield Charge(1.0)
            return clock.now

        handle = scheduler.spawn(session(), at=5.0)
        scheduler.run()
        assert seen == [5.0]
        assert handle.state == Session.DONE and handle.result == 6.0

    def test_start_in_the_past_rejected(self):
        clock = SimClock(start=10.0)
        with pytest.raises(SchedulerError):
            Scheduler(clock).spawn(iter(()), at=9.0)

    def test_session_error_is_recorded_not_raised(self):
        scheduler = Scheduler(SimClock())

        def session():
            yield Charge(1.0)
            raise RuntimeError("died")

        handle = scheduler.spawn(session())
        scheduler.run()
        assert handle.state == Session.FAILED
        assert isinstance(handle.error, RuntimeError)

    def test_deadlock_names_stuck_sessions(self):
        scheduler = Scheduler(SimClock())

        def session():
            yield Waiter("never resolved")

        scheduler.spawn(session(), name="stuck")
        with pytest.raises(SchedulerError, match="stuck"):
            scheduler.run()

    def test_uncontended_acquire_does_not_suspend(self):
        clock = SimClock()
        scheduler = Scheduler(clock)
        resource = Resource("dev")

        def session():
            got = yield resource.acquire("s")
            assert got is resource
            return clock.now

        handle = scheduler.spawn(session())
        scheduler.run()
        assert handle.result == 0.0  # no time passed waiting

    def test_queued_acquire_resumes_on_release(self):
        clock = SimClock()
        scheduler = Scheduler(clock)
        resource = Resource("dev")
        order = []

        def holder():
            yield resource.acquire("holder")
            yield Charge(2.0)
            order.append(("holder done", clock.now))
            resource.release()

        def waiterland():
            yield resource.acquire("waiter")
            order.append(("waiter got it", clock.now))
            resource.release()

        scheduler.spawn(holder())
        scheduler.spawn(waiterland())
        scheduler.run()
        assert order == [("holder done", 2.0), ("waiter got it", 2.0)]

    def test_rejected_waiter_throws_into_session(self):
        scheduler = Scheduler(SimClock())
        waiter = Waiter("w")

        def failer():
            yield Charge(1.0)
            waiter.reject(ValueError("no"))

        def session():
            try:
                yield waiter
            except ValueError:
                return "caught"

        handle = scheduler.spawn(session())
        scheduler.spawn(failer())
        scheduler.run()
        assert handle.result == "caught"

    def test_same_generator_runs_identically_under_both_drivers(self):
        def session(clock):
            yield Charge(1.0)
            yield 2.0
            return clock.now

        sync_clock = SimClock()
        sync_result = drive_sync(session(sync_clock), sync_clock)

        sched_clock = SimClock()
        scheduler = Scheduler(sched_clock)
        handle = scheduler.spawn(session(sched_clock))
        scheduler.run()
        assert handle.result == sync_result == 3.0
        assert sync_clock.now == sched_clock.now


class TestTimeLedger:
    def test_charges_land_in_working_seconds(self):
        clock = SimClock()
        scheduler = Scheduler(clock)

        def session():
            yield Charge(1.5)
            yield 0.5

        handle = scheduler.spawn(session())
        scheduler.run()
        assert handle.working_s == pytest.approx(2.0)
        assert handle.blocked == {}
        assert handle.finished_at - handle.started_at == pytest.approx(2.0)

    def test_resource_wait_lands_under_the_resource_kind(self):
        clock = SimClock()
        scheduler = Scheduler(clock)
        resource = Resource("dev", clock=clock)

        def holder():
            yield resource.acquire("holder")
            yield Charge(3.0)
            resource.release()

        def waiter_session():
            yield resource.acquire("waiter")
            resource.release()

        scheduler.spawn(holder())
        handle = scheduler.spawn(waiter_session())
        scheduler.run()
        assert handle.blocked["resource"] == pytest.approx(3.0)
        assert handle.working_s == pytest.approx(0.0)

    def test_inline_handoff_time_stays_off_the_releasers_ledger(self):
        """A release resumes its next waiter synchronously; the resumed
        session's inline work must not inflate the releaser's ledger."""
        clock = SimClock()
        scheduler = Scheduler(clock)
        resource = Resource("dev", clock=clock)

        def first():
            yield resource.acquire("first")
            yield Charge(1.0)
            resource.release()  # second runs 2.0s inline, right here

        def second():
            yield resource.acquire("second")
            clock.advance(2.0)
            resource.release()

        first_handle = scheduler.spawn(first())
        second_handle = scheduler.spawn(second())
        scheduler.run()
        assert first_handle.working_s == pytest.approx(1.0)
        assert second_handle.working_s == pytest.approx(2.0)
        assert second_handle.blocked["resource"] == pytest.approx(1.0)

    def test_reentrant_advance_time_is_kept_by_both_sessions(self):
        """Two sessions advancing the clock inline at the same instant
        overlap in virtual time: each keeps its own elapsed interval."""
        clock = SimClock()
        scheduler = Scheduler(clock)

        def session():
            yield Charge(0.0)
            clock.advance(2.0)

        a = scheduler.spawn(session())
        b = scheduler.spawn(session())
        scheduler.run()
        # b's advance runs nested inside a's (re-entrant timers) and
        # moves time for both; each session still claims its elapsed.
        assert a.working_s + b.working_s >= 2.0
        for handle in (a, b):
            assert handle.working_s == pytest.approx(
                handle.finished_at - handle.started_at)

    def test_waiter_kind_defaults_and_resource_kind(self):
        assert Waiter("w").kind == "wait"
        clock = SimClock()
        resource = Resource("dev", clock=clock)
        resource.try_acquire("x")
        assert resource.acquire("y").kind == "resource"
