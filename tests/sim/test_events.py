"""The causal event log: flight-recorder ring, txn stack, JSONL, merge."""

import json

import pytest

from repro.sim import SimClock
from repro.sim.events import (
    DEFAULT_CAPACITY,
    CausalEvent,
    EventsError,
    FlightRecorder,
    merge_streams,
    read_jsonl,
    write_jsonl,
)
from repro.sim.trace import Tracer


@pytest.fixture
def clock():
    return SimClock()


@pytest.fixture
def recorder(clock):
    return FlightRecorder(clock=clock, device="home")


class TestEmission:
    def test_seq_is_per_device_monotonic(self, recorder, clock):
        first = recorder.emit("a")
        clock.advance(1.5)
        second = recorder.emit("b", key="value")
        assert (first.seq, second.seq) == (1, 2)
        assert first.time == 0.0
        assert second.time == pytest.approx(1.5)
        assert second.attrs == {"key": "value"}

    def test_emit_never_advances_the_clock(self, recorder, clock):
        for _ in range(100):
            recorder.emit("tick")
        assert clock.now == 0.0

    def test_default_capacity(self, recorder):
        assert recorder.capacity == DEFAULT_CAPACITY

    def test_bad_capacity_rejected(self):
        with pytest.raises(EventsError):
            FlightRecorder(capacity=0)

    def test_context_labels_merge_into_attrs(self, recorder):
        recorder.set_context(stage="transfer", package="com.app")
        event = recorder.emit("link.chunk", wire_bytes=7)
        assert event.attrs == {"stage": "transfer", "package": "com.app",
                               "wire_bytes": 7}
        recorder.clear_context("stage", "package")
        assert recorder.emit("after").attrs == {}

    def test_explicit_attrs_beat_context(self, recorder):
        recorder.set_context(stage="transfer")
        assert recorder.emit("x", stage="restore").attrs == \
            {"stage": "restore"}

    def test_span_path_from_attached_tracer(self, clock):
        tracer = Tracer(clock)
        recorder = FlightRecorder(clock=clock, device="home", tracer=tracer)
        assert recorder.emit("outside").span is None
        with tracer.span("migration"):
            with tracer.span("transfer"):
                event = recorder.emit("inside")
        assert event.span == "migration/transfer"


class TestTransactionStack:
    def test_events_inherit_innermost_txn(self, recorder):
        assert recorder.emit("before").txn is None
        recorder.push_txn(7)
        assert recorder.emit("during").txn == 7
        recorder.push_txn(8)
        assert recorder.current_txn == 8
        assert recorder.parent_txn == 7
        assert recorder.emit("nested").txn == 8
        recorder.pop_txn()
        recorder.pop_txn()
        assert recorder.emit("after").txn is None

    def test_explicit_txn_override(self, recorder):
        recorder.push_txn(7)
        assert recorder.emit("x", txn=None).txn is None
        assert recorder.emit("y", txn=42).txn == 42
        recorder.pop_txn()

    def test_pop_underflow_raises(self, recorder):
        with pytest.raises(EventsError):
            recorder.pop_txn()


class TestRingBuffer:
    def test_capacity_bounds_retention_oldest_first(self, clock):
        recorder = FlightRecorder(clock=clock, device="home", capacity=3)
        for i in range(10):
            recorder.emit("e", i=i)
        assert len(recorder) == 3
        assert recorder.emitted == 10
        assert recorder.evicted == 7
        # The retained tail is the newest events, in emission order.
        assert [e.seq for e in recorder] == [8, 9, 10]
        assert [e.attrs["i"] for e in recorder] == [7, 8, 9]

    def test_events_filter_by_kind(self, recorder):
        recorder.emit("a")
        recorder.emit("b")
        recorder.emit("a")
        assert [e.seq for e in recorder.events("a")] == [1, 3]
        assert len(recorder.events()) == 3

    def test_clear_keeps_seq_counter(self, recorder):
        recorder.emit("a")
        recorder.clear()
        assert len(recorder) == 0
        assert recorder.emit("b").seq == 2


class TestDisabledNullObject:
    def test_emit_is_a_noop_but_bookkeeping_works(self, clock):
        recorder = FlightRecorder(clock=clock, device="home", enabled=False)
        assert recorder.emit("a", k=1) is None
        assert len(recorder) == 0
        assert recorder.emitted == 0
        assert recorder.export() == []
        # The txn stack and context still function (pure bookkeeping).
        recorder.push_txn(1)
        assert recorder.current_txn == 1
        recorder.pop_txn()
        recorder.set_context(stage="x")
        recorder.clear_context("stage")


class TestExportAndJsonl:
    def test_export_shape_is_fixed(self, recorder):
        recorder.push_txn(3)
        recorder.emit("binder.transact", method="set")
        recorder.pop_txn()
        [event] = recorder.export()
        assert event == {"seq": 1, "t": 0.0, "device": "home",
                         "kind": "binder.transact", "txn": 3, "span": None,
                         "attrs": {"method": "set"}}

    def test_jsonl_round_trip(self, recorder, tmp_path):
        recorder.emit("a", n=1)
        recorder.emit("b", n=2)
        path = tmp_path / "events.jsonl"
        assert write_jsonl(str(path), recorder.export()) == 2
        lines = path.read_text().strip().split("\n")
        assert len(lines) == 2
        # Sorted keys -> stable byte-level artifacts.
        assert json.loads(lines[0]) == recorder.export()[0]
        assert list(json.loads(lines[0])) == sorted(json.loads(lines[0]))
        assert read_jsonl(str(path)) == recorder.export()


class TestMalformedLines:
    def test_error_names_the_file_and_line(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text('{"seq": 1}\n{"seq": 2}\n{"seq": 3\n')
        with pytest.raises(EventsError) as excinfo:
            read_jsonl(str(path))
        message = str(excinfo.value)
        assert message.startswith(f"{path}:3: malformed event line")
        assert '\'{"seq": 3\'' in message  # the offending snippet

    def test_blank_lines_are_skipped_not_errors(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text('{"seq": 1}\n\n{"seq": 2}\n')
        assert [e["seq"] for e in read_jsonl(str(path))] == [1, 2]

    def test_parse_jsonl_default_source(self):
        from repro.sim.events import parse_jsonl
        with pytest.raises(EventsError, match="<events>:1:"):
            parse_jsonl(["not json"])

    def test_long_lines_are_truncated_in_the_error(self, tmp_path):
        from repro.sim.events import parse_jsonl
        with pytest.raises(EventsError) as excinfo:
            parse_jsonl(['{"pad": "' + "x" * 500], source="big.jsonl")
        assert len(str(excinfo.value)) < 200


class TestMergeStreams:
    def test_merge_is_a_causal_interleaving(self, clock):
        home = FlightRecorder(clock=clock, device="home")
        guest = FlightRecorder(clock=clock, device="guest")
        home.emit("h1")
        clock.advance(1.0)
        guest.emit("g1")
        clock.advance(1.0)
        home.emit("h2")
        guest.emit("g2")   # same t as h2: device name breaks the tie
        merged = merge_streams(home.export(), guest.export())
        assert [(e["device"], e["kind"]) for e in merged] == \
            [("home", "h1"), ("guest", "g1"), ("guest", "g2"),
             ("home", "h2")]

    def test_merge_order_independent_of_argument_order(self, clock):
        home = FlightRecorder(clock=clock, device="home")
        guest = FlightRecorder(clock=clock, device="guest")
        for i in range(5):
            home.emit("h", i=i)
            guest.emit("g", i=i)
            clock.advance(0.5)
        assert merge_streams(home.export(), guest.export()) == \
            merge_streams(guest.export(), home.export())


class TestCausalEventStr:
    def test_str_shows_seq_time_txn_attrs(self):
        event = CausalEvent(seq=4, time=1.25, device="home",
                            kind="link.fault", txn=9,
                            attrs={"bytes": 10})
        text = str(event)
        assert "#4" in text and "link.fault" in text
        assert "txn=9" in text and "bytes=10" in text
