"""The telemetry diff engine's pure pieces: deltas, divergence, suspects."""

import pytest

from repro.sim.diffing import (
    DEFAULT_TOLERANCE,
    EXIT_IDENTICAL,
    EXIT_REGRESSED,
    EXIT_WITHIN_BAND,
    build_suspects,
    diff_counters,
    diff_histograms,
    diff_migrations,
    diff_wait_profiles,
    exit_code,
    first_divergence,
    format_delta,
)


class TestFormatDelta:
    def test_names_the_band_edge_it_broke(self):
        line = format_delta("counter link/bytes_total", 100, 150, 0.02)
        assert line == ("counter link/bytes_total: 100 -> 150 "
                        "(+50.0% outside the ±2% band [98, 102])")

    def test_within_band(self):
        line = format_delta("x", 100, 101, 0.02)
        assert "within the ±2% band" in line
        assert "100 -> 101" in line

    def test_appearing_value_is_new(self):
        assert "(new" in format_delta("x", 0, 5, 0.02)

    def test_negative_drift_signed(self):
        assert "-10.0%" in format_delta("x", 100, 90, 0.02)


class TestCounterDiffs:
    def test_equal_maps_are_empty(self):
        assert diff_counters({"a": 1}, {"a": 1}, 0.02) == []

    def test_missing_keys_count_as_zero(self):
        (entry,) = diff_counters({"a": 4}, {}, 0.02)
        assert (entry["a"], entry["b"], entry["delta"]) == (4.0, 0.0, -4.0)
        assert not entry["within_band"]

    def test_within_band_flag(self):
        (entry,) = diff_counters({"a": 100}, {"a": 101}, 0.02)
        assert entry["within_band"]

    def test_histogram_count_and_sum(self):
        entries = diff_histograms(
            {"h": {"count": 2, "sum": 3.0}},
            {"h": {"count": 2, "sum": 4.0}}, 0.02)
        assert [e["key"] for e in entries] == ["h.sum"]


def _row(key, outcome="migrated", stages=None, self_seconds=None,
         faulted_stage=None, total=None):
    stages = stages or {}
    return {"key": key, "package": key, "outcome": outcome,
            "faulted_stage": faulted_stage, "session": None,
            "stages": stages, "self_seconds": self_seconds or {},
            "total_seconds": (total if total is not None
                              else sum(stages.values()))}


class TestMigrationDiffs:
    def test_identical_rows_yield_nothing(self):
        rows = [_row("a", stages={"transfer": 1.0})]
        assert diff_migrations(rows, rows, 0.02) == []

    def test_outcome_flip_carries_the_faulted_stage(self):
        a = [_row("a", stages={"transfer": 2.0})]
        b = [_row("a", outcome="faulted", faulted_stage="transfer",
                  stages={"transfer": 0.5})]
        (entry,) = diff_migrations(a, b, 0.02)
        assert entry["outcome_changed"]
        assert (entry["outcome_a"], entry["outcome_b"]) == ("migrated",
                                                            "faulted")
        assert entry["faulted_stage"] == "transfer"

    def test_attempt_on_one_side_only(self):
        (entry,) = diff_migrations([_row("a")], [], 0.02)
        assert entry["only_in"] == "A"
        assert entry["outcome_changed"]

    def test_self_seconds_diffed_when_present(self):
        a = [_row("a", stages={"transfer": 1.0},
                  self_seconds={"transfer": 0.9})]
        b = [_row("a", stages={"transfer": 2.0},
                  self_seconds={"transfer": 1.9})]
        (entry,) = diff_migrations(a, b, 0.02)
        (self_delta,) = entry["self_deltas"]
        assert self_delta["delta"] == pytest.approx(1.0)


class TestWaitProfileDiffs:
    def test_only_differing_terms_appear(self):
        a = {"s1": {"admission_queue_s": 1.0, "active_s": 2.0}}
        b = {"s1": {"admission_queue_s": 3.0, "active_s": 2.0}}
        (entry,) = diff_wait_profiles(a, b, 0.02)
        (delta,) = entry["terms"]
        assert delta["key"] == "admission_queue_s"

    def test_identical_profiles_yield_nothing(self):
        a = {"s1": {"active_s": 2.0}}
        assert diff_wait_profiles(a, dict(a), 0.02) == []


class TestFirstDivergence:
    def _event(self, t, device, seq, kind="x"):
        return {"t": t, "device": device, "seq": seq, "kind": kind}

    def test_identical_streams_have_none(self):
        events = [self._event(0.0, "home", 1)]
        assert first_divergence(events, list(events)) is None

    def test_first_disagreement_located_with_context(self):
        a = [self._event(0.0, "home", 1), self._event(1.0, "home", 2),
             self._event(2.0, "home", 3)]
        b = [a[0], a[1], self._event(2.5, "home", 3)]
        divergence = first_divergence(a, b, context=1)
        assert divergence["index"] == 2
        assert divergence["at_a"] == [2.0, "home", 3]
        assert divergence["at_b"] == [2.5, "home", 3]
        assert divergence["context"] == [a[1]]

    def test_prefix_stream_diverges_at_its_end(self):
        a = [self._event(0.0, "home", 1), self._event(1.0, "home", 2)]
        divergence = first_divergence(a, a[:1])
        assert divergence["index"] == 1
        assert divergence["b"] is None
        assert (divergence["a_total"], divergence["b_total"]) == (2, 1)


class TestSuspects:
    def test_outcome_flips_outrank_timing(self):
        migrations = diff_migrations(
            [_row("slow", stages={"transfer": 1.0}),
             _row("flip", stages={"transfer": 2.0})],
            [_row("slow", stages={"transfer": 9.0}),
             _row("flip", outcome="faulted", faulted_stage="restore",
                  stages={"transfer": 2.0})], 0.02)
        suspects = build_suspects(migrations, [])
        assert suspects[0]["kind"] == "outcome"
        assert suspects[0]["subject"] == "flip"
        assert "restore" in suspects[0]["detail"]

    def test_ranking_stable_across_input_order(self):
        a_rows = [_row("a", stages={"transfer": 1.0}),
                  _row("b", stages={"transfer": 1.0})]
        b_rows = [_row("a", stages={"transfer": 2.0}),
                  _row("b", stages={"transfer": 2.0})]
        forward = build_suspects(diff_migrations(a_rows, b_rows, 0.02), [])
        backward = build_suspects(
            diff_migrations(list(reversed(a_rows)),
                            list(reversed(b_rows)), 0.02), [])
        assert forward == backward
        assert [s["rank"] for s in forward] == [1, 2]

    def test_wall_s_is_never_a_suspect(self):
        wait = diff_wait_profiles(
            {"s": {"link_dilation_s": 0.0, "wall_s": 1.0}},
            {"s": {"link_dilation_s": 2.0, "wall_s": 3.0}}, 0.02)
        suspects = build_suspects([], wait)
        assert [s["stage"] for s in suspects] == ["link_dilation_s"]
        assert "link dilation" in suspects[0]["detail"]

    def test_noise_floor_filters_float_dust(self):
        migrations = diff_migrations(
            [_row("a", stages={"transfer": 1.0})],
            [_row("a", stages={"transfer": 1.0 + 1e-9})], 0.02)
        assert build_suspects(migrations, []) == []


class TestExitCodes:
    def test_mapping(self):
        assert exit_code({"verdict": "identical"}) == EXIT_IDENTICAL
        assert exit_code({"verdict": "within-band"}) == EXIT_WITHIN_BAND
        assert exit_code({"verdict": "regressed"}) == EXIT_REGRESSED

    def test_default_tolerance_matches_the_bench_gate(self):
        from repro.experiments.bench import SIM_TOLERANCE
        assert DEFAULT_TOLERANCE == SIM_TOLERANCE
