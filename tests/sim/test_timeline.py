"""The edge-sampled time-series plane: deterministic, associative,
killable (``FLUX_TIMELINE=0``), and exportable as Chrome counters."""

import json

import pytest

from repro.sim import SimClock
from repro.sim.timeline import (
    TIMELINE_ENV,
    Timeline,
    chrome_counter_events,
    merge_timelines,
    read_timeline,
    series_key,
    split_series_key,
    timeline_enabled,
    write_timeline,
)


class TestSampling:
    def test_samples_land_on_the_virtual_clock_edge(self):
        clock = SimClock()
        timeline = Timeline(clock=clock)
        timeline.sample("q/depth", 1, resource="guest")
        clock.advance(2.5)
        timeline.sample("q/depth", 0, resource="guest")
        export = timeline.export()
        assert export == {"q/depth{resource=guest}": [[0.0, 1.0], [2.5, 0.0]]}

    def test_same_timestamp_coalesces_last_wins(self):
        timeline = Timeline(clock=SimClock())
        timeline.sample("n", 1)
        timeline.sample("n", 2)
        timeline.sample("n", 3)
        assert timeline.export() == {"n": [[0.0, 3.0]]}

    def test_sampling_never_advances_the_clock(self):
        clock = SimClock()
        fired = []
        clock.call_after(0.0, lambda: fired.append(True))
        Timeline(clock=clock).sample("n", 1)
        assert clock.now == 0.0
        assert not fired

    def test_labels_sort_into_a_stable_key(self):
        timeline = Timeline(clock=SimClock())
        timeline.sample("s", 1, b="2", a="1")
        assert list(timeline.export()) == ["s{a=1,b=2}"]

    def test_disabled_timeline_collects_nothing(self):
        timeline = Timeline(clock=SimClock(), enabled=False)
        timeline.sample("n", 1)
        assert len(timeline) == 0
        assert timeline.export() == {}


class TestSeriesKey:
    def test_roundtrip(self):
        key = series_key("link/share", {"medium": "m", "session": "s@0"})
        assert split_series_key(key) == (
            "link/share", {"medium": "m", "session": "s@0"})

    def test_bare_name_roundtrip(self):
        assert split_series_key(series_key("n", {})) == ("n", {})


class TestKillSwitch:
    def test_env_zero_disables(self, monkeypatch):
        monkeypatch.setenv(TIMELINE_ENV, "0")
        assert not timeline_enabled()

    def test_default_is_enabled(self, monkeypatch):
        monkeypatch.delenv(TIMELINE_ENV, raising=False)
        assert timeline_enabled()


class TestMerge:
    def _tl(self, offset):
        clock = SimClock(start=offset)
        timeline = Timeline(clock=clock)
        timeline.sample("n", offset)
        return timeline.export()

    def test_merge_is_associative(self):
        a, b, c = self._tl(1.0), self._tl(2.0), self._tl(3.0)
        left = merge_timelines(merge_timelines(a, b), c)
        right = merge_timelines(a, merge_timelines(b, c))
        assert left == right == merge_timelines(a, b, c)

    def test_merge_sorts_by_time_stably(self):
        early, late = self._tl(1.0), self._tl(5.0)
        merged = merge_timelines(late, early)
        assert merged["n"] == [[1.0, 1.0], [5.0, 5.0]]

    def test_merge_of_nothing_is_empty(self):
        assert merge_timelines() == {}


class TestExports:
    def test_chrome_counter_events_shape(self):
        timeline = Timeline(clock=SimClock())
        timeline.sample("medium/active_flows", 2, medium="m")
        (event,) = chrome_counter_events(timeline.export())
        assert event["ph"] == "C"
        assert event["name"] == "medium/active_flows{medium=m}"
        assert event["ts"] == 0.0
        assert event["args"] == {"value": 2.0}

    def test_write_read_roundtrip(self, tmp_path):
        timeline = Timeline(clock=SimClock())
        timeline.sample("a", 1)
        timeline.sample("b", 2, k="v")
        path = tmp_path / "tl.json"
        count = write_timeline(path, timeline.export(), meta={"seed": 0})
        assert count == 2
        document = json.loads(path.read_text())
        assert document["schema"] == 1
        assert read_timeline(path) == timeline.export()

    def test_export_keys_are_sorted(self):
        timeline = Timeline(clock=SimClock())
        for name in ("z", "a", "m"):
            timeline.sample(name, 1)
        assert list(timeline.export()) == ["a", "m", "z"]


class TestSchemaVersioning:
    def test_unknown_schema_is_rejected_with_the_version(self, tmp_path):
        from repro.sim.timeline import TimelineError
        path = tmp_path / "future.json"
        path.write_text(json.dumps({"schema": 99, "series": {}}))
        with pytest.raises(TimelineError,
                           match="unsupported timeline schema 99"):
            read_timeline(path)

    def test_schemaless_legacy_export_is_rejected(self, tmp_path):
        from repro.sim.timeline import TimelineError
        path = tmp_path / "legacy.json"
        path.write_text(json.dumps({"a": [[0.0, 1.0]]}))
        with pytest.raises(TimelineError, match="unsupported timeline "
                                                "schema None"):
            read_timeline(path)

    def test_non_object_document_is_rejected(self, tmp_path):
        from repro.sim.timeline import TimelineError
        path = tmp_path / "list.json"
        path.write_text(json.dumps([1, 2, 3]))
        with pytest.raises(TimelineError, match="not a timeline document"):
            read_timeline(path)

    def test_meta_rides_along(self, tmp_path):
        from repro.sim.timeline import parse_timeline_document
        path = tmp_path / "tl.json"
        write_timeline(path, {"a": [[0.0, 1.0]]}, meta={"seed": 7})
        document = json.loads(path.read_text())
        assert document["meta"] == {"seed": 7}
        assert parse_timeline_document(document) == {"a": [[0.0, 1.0]]}
