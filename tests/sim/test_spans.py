"""Hierarchical tracer spans, the event indexes, Chrome-trace export."""

import json

import pytest

from repro.sim import SimClock
from repro.sim.trace import Tracer


@pytest.fixture
def clock():
    return SimClock()


@pytest.fixture
def tracer(clock):
    return Tracer(clock)


class TestSpanNesting:
    def test_spans_nest_and_measure_on_the_clock(self, tracer, clock):
        with tracer.span("migration", category="migration") as root:
            with tracer.span("preparation", category="stage"):
                clock.advance(1.0)
            with tracer.span("transfer", category="stage"):
                clock.advance(3.5)
        assert tracer.root_spans() == [root]
        assert [c.name for c in root.children] == ["preparation", "transfer"]
        assert root.duration == pytest.approx(4.5)
        assert root.child("transfer").duration == pytest.approx(3.5)
        prep = root.child("preparation", category="stage")
        assert prep.start == pytest.approx(0.0)
        assert prep.end == pytest.approx(1.0)

    def test_exception_still_closes_span(self, tracer, clock):
        with pytest.raises(RuntimeError):
            with tracer.span("faulty") as span:
                clock.advance(2.0)
                raise RuntimeError("mid-span fault")
        assert span.closed
        assert span.duration == pytest.approx(2.0)

    def test_open_span_refuses_duration(self, tracer):
        handle = tracer.span("open")
        assert not handle.span.closed
        with pytest.raises(ValueError):
            handle.span.duration

    def test_add_span_attaches_measured_interval(self, tracer, clock):
        with tracer.span("burst") as burst:
            child = tracer.add_span("chunk:0", 1.0, 2.5, category="chunk",
                                    wire_bytes=100)
        assert burst.children == [child]
        assert child.duration == pytest.approx(1.5)
        assert child.detail["wire_bytes"] == 100
        # The analytic interval never advanced the clock.
        assert clock.now == 0.0

    def test_add_span_rejects_backwards_interval(self, tracer):
        with pytest.raises(ValueError):
            tracer.add_span("bad", 2.0, 1.0)

    def test_end_span_closes_dangling_children(self, tracer, clock):
        with tracer.span("outer") as outer:
            inner = tracer.span("inner").span   # opened, never exited
            clock.advance(1.0)
        assert outer.closed and inner.closed
        assert inner.end == pytest.approx(1.0)

    def test_annotate_merges_detail(self, tracer):
        with tracer.span("m", package="a") as span:
            span.annotate(faulted_stage="transfer")
        assert span.detail == {"package": "a", "faulted_stage": "transfer"}

    def test_walk_is_depth_first(self, tracer):
        with tracer.span("a") as a:
            with tracer.span("b"):
                tracer.add_span("c", 0.0, 0.0)
            with tracer.span("d"):
                pass
        assert [s.name for s in a.walk()] == ["a", "b", "c", "d"]

    def test_root_spans_filter_by_category(self, tracer):
        with tracer.span("m", category="migration"):
            pass
        with tracer.span("other"):
            pass
        assert [s.name for s in tracer.root_spans("migration")] == ["m"]


class TestChromeTraceExport:
    def test_complete_events_in_microseconds(self, tracer, clock):
        with tracer.span("migration", category="migration", package="p"):
            with tracer.span("transfer", category="stage"):
                clock.advance(2.0)
        doc = tracer.chrome_trace()
        assert doc["displayTimeUnit"] == "ms"
        events = {e["name"]: e for e in doc["traceEvents"]}
        assert events["migration"]["ph"] == "X"
        assert events["migration"]["dur"] == pytest.approx(2_000_000)
        assert events["transfer"]["cat"] == "stage"
        assert events["migration"]["args"] == {"package": "p"}

    def test_open_span_closed_at_now_and_flagged(self, tracer, clock):
        clock.advance(1.5)
        tracer.span("never-closed")
        clock.advance(0.5)
        [event] = tracer.chrome_trace()["traceEvents"]
        assert event["ph"] == "X"
        assert event["ts"] == pytest.approx(1_500_000)
        assert event["dur"] == pytest.approx(500_000)
        assert event["args"]["flux.incomplete"] is True

    def test_export_is_valid_json(self, tracer, clock, tmp_path):
        with tracer.span("m"):
            clock.advance(1.0)
        path = tmp_path / "trace.json"
        tracer.write_chrome_trace(str(path))
        doc = json.loads(path.read_text())
        assert doc["traceEvents"][0]["name"] == "m"


class TestEventIndexes:
    def test_filtered_lookups_preserve_emission_order(self, tracer, clock):
        tracer.emit("cria", "freeze", pid=1)
        clock.advance(1.0)
        tracer.emit("net", "send", n=1)
        tracer.emit("cria", "freeze", pid=2)
        tracer.emit("cria", "thaw", pid=1)
        assert [e.detail["pid"] for e in tracer.events("cria", "freeze")] \
            == [1, 2]
        assert [e.name for e in tracer.events(category="cria")] \
            == ["freeze", "freeze", "thaw"]
        assert [e.category for e in tracer.events(name="send")] == ["net"]
        assert len(tracer.events()) == 4

    def test_index_of_first_match(self, tracer):
        tracer.emit("a", "x")
        tracer.emit("b", "y")
        tracer.emit("a", "x")
        assert tracer.index_of("b", "y") == 1
        assert tracer.index_of("a", "x") == 0
        assert tracer.index_of("a", "missing") == -1

    def test_clear_resets_indexes_and_spans(self, tracer):
        tracer.emit("a", "x")
        with tracer.span("s"):
            pass
        tracer.clear()
        assert len(tracer) == 0
        assert tracer.events("a", "x") == []
        assert tracer.index_of("a", "x") == -1
        assert tracer.root_spans() == []

    def test_disabled_tracer_indexes_nothing(self, tracer):
        tracer.enabled = False
        tracer.emit("a", "x")
        assert tracer.events("a", "x") == []
