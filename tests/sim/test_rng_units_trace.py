"""RngFactory determinism, unit helpers, Tracer."""

import pytest
from hypothesis import given, strategies as st

from repro.sim import SimClock, Tracer, units
from repro.sim.rng import RngFactory, derive_seed


class TestRng:
    def test_same_name_same_stream(self):
        a = RngFactory(42).stream("net", "x")
        b = RngFactory(42).stream("net", "x")
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_different_names_independent(self):
        factory = RngFactory(42)
        a = factory.stream("net", "x")
        b = factory.stream("net", "y")
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]

    def test_different_root_seeds_differ(self):
        a = RngFactory(1).stream("x")
        b = RngFactory(2).stream("x")
        assert a.random() != b.random()

    @given(st.integers(min_value=0, max_value=2**32),
           st.text(max_size=20))
    def test_derive_seed_is_stable_and_63bit(self, seed, name):
        first = derive_seed(seed, name)
        assert first == derive_seed(seed, name)
        assert 0 <= first < 2 ** 63


class TestUnits:
    def test_mb_round_trip(self):
        assert units.to_mb(units.mb(7.5)) == pytest.approx(7.5, abs=1e-6)

    def test_format_size(self):
        assert units.format_size(units.mb(13.6)) == "13.6 MB"
        assert units.format_size(units.kb(187)) == "187 KB"
        assert units.format_size(12) == "12 B"

    def test_transfer_seconds(self):
        # 1 MB over 8 Mbps: exactly (2**20 * 8) / 8e6 seconds.
        assert units.transfer_seconds(units.MB, units.mbps(8)) == \
            pytest.approx(2 ** 20 * 8 / 8e6)

    def test_transfer_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            units.transfer_seconds(100, 0)


class TestTracer:
    def test_events_carry_time_and_detail(self):
        clock = SimClock()
        tracer = Tracer(clock)
        tracer.emit("cat", "one", pid=5)
        clock.advance(1.0)
        tracer.emit("cat", "two")
        events = tracer.events("cat")
        assert [e.name for e in events] == ["one", "two"]
        assert events[0].time == 0.0
        assert events[0].detail == {"pid": 5}
        assert events[1].time == 1.0

    def test_filtering(self):
        tracer = Tracer(SimClock())
        tracer.emit("a", "x")
        tracer.emit("b", "x")
        tracer.emit("a", "y")
        assert len(tracer.events("a")) == 2
        assert len(tracer.events(name="x")) == 2
        assert len(tracer.events("a", "y")) == 1

    def test_index_of_orders_events(self):
        tracer = Tracer(SimClock())
        tracer.emit("a", "first")
        tracer.emit("a", "second")
        assert tracer.index_of("a", "first") < tracer.index_of("a", "second")
        assert tracer.index_of("a", "missing") == -1

    def test_disabled_tracer_drops_events(self):
        tracer = Tracer(SimClock())
        tracer.enabled = False
        tracer.emit("a", "x")
        assert len(tracer) == 0
