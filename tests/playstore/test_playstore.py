"""Synthetic Play-store catalog and the §4 analysis."""

import pytest

from repro.playstore import (
    PAPER_CATALOG_SIZE,
    PAPER_PRESERVE_EGL_COUNT,
    analyze_catalog,
    generate_catalog,
    size_cdf,
)
from repro.sim import units


SAMPLE = 30_000


@pytest.fixture(scope="module")
def catalog():
    return generate_catalog(SAMPLE)


class TestCatalog:
    def test_deterministic(self):
        a = generate_catalog(500)
        b = generate_catalog(500)
        assert [x.install_size for x in a] == [x.install_size for x in b]
        assert [x.calls_preserve_egl for x in a] == \
            [x.calls_preserve_egl for x in b]

    def test_seed_changes_catalog(self):
        a = generate_catalog(500, seed=0)
        b = generate_catalog(500, seed=1)
        assert [x.install_size for x in a] != [x.install_size for x in b]

    def test_preserve_egl_count_scales(self, catalog):
        expected = round(PAPER_PRESERVE_EGL_COUNT
                         * SAMPLE / PAPER_CATALOG_SIZE)
        assert sum(1 for a in catalog if a.calls_preserve_egl) == expected

    def test_sizes_within_figure_axis(self, catalog):
        assert all(10 * units.KB <= a.install_size <= 4 * units.GB
                   for a in catalog)

    def test_install_size_equals_apk_size(self, catalog):
        """The paper verified metadata size == actual APK size."""
        assert all(a.install_size == a.apk_size for a in catalog)


class TestAnalysis:
    def test_cdf_anchors_match_paper(self, catalog):
        report = analyze_catalog(catalog)
        assert report.cdf_at(units.MB) == pytest.approx(0.60, abs=0.02)
        assert report.cdf_at(10 * units.MB) == pytest.approx(0.90, abs=0.02)

    def test_cdf_monotone(self, catalog):
        report = analyze_catalog(catalog)
        values = [v for _, v in report.cdf_points]
        assert values == sorted(values)
        assert values[-1] == 1.0

    def test_size_verification_sample_clean(self, catalog):
        report = analyze_catalog(catalog)
        assert report.size_mismatches == 0
        assert report.size_verified_sample == 500

    def test_migratable_fraction_overwhelming(self, catalog):
        report = analyze_catalog(catalog)
        assert report.preserve_egl_fraction < 0.01
        assert report.migratable_fraction > 0.99

    def test_size_cdf_helper(self):
        apps = generate_catalog(100)
        (at_max,) = size_cdf(apps, [4 * units.GB])
        assert at_max == 1.0
